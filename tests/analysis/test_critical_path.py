"""Critical-path extraction."""

import pytest

from repro.analysis import critical_path, render_critical_path
from repro.compiler import CompileOptions, CommandKind, compile_model
from repro.compiler.program import ProgramBuilder
from repro.hw import tiny_test_machine
from repro.sim import simulate

from tests.conftest import make_mixed_graph


class TestHandBuiltChains:
    def test_serial_chain_is_the_path(self):
        npu = tiny_test_machine(1)
        b = ProgramBuilder(1)
        ld = b.add(0, CommandKind.LOAD_INPUT, num_bytes=80)
        cp = b.add(0, CommandKind.COMPUTE, deps=[ld], macs=640)
        st = b.add(0, CommandKind.STORE_OUTPUT, deps=[cp], num_bytes=80)
        program = b.build()
        trace = simulate(program, npu).trace
        path = critical_path(program, trace)
        cids = [seg.event.cid for seg in path.segments]
        assert cids == [st, cp, ld]
        assert [seg.bound_by for seg in path.segments] == ["dep", "dep", "ready"]

    def test_slow_core_dominates(self):
        npu = tiny_test_machine(2)
        b = ProgramBuilder(2)
        b.add(0, CommandKind.COMPUTE, macs=100)
        slow = b.add(1, CommandKind.COMPUTE, macs=100_000)
        program = b.build()
        trace = simulate(program, npu).trace
        path = critical_path(program, trace)
        assert path.segments[0].event.cid == slow
        assert all(seg.event.core == 1 for seg in path.segments)

    def test_engine_serialization_detected(self):
        npu = tiny_test_machine(1)
        b = ProgramBuilder(1)
        b.add(0, CommandKind.COMPUTE, macs=640)
        tail = b.add(0, CommandKind.COMPUTE, macs=640)
        program = b.build()
        trace = simulate(program, npu).trace
        path = critical_path(program, trace)
        assert path.segments[0].event.cid == tail
        assert path.segments[0].bound_by == "engine"

    def test_empty_trace(self):
        npu = tiny_test_machine(1)
        program = ProgramBuilder(1).build()
        trace = simulate(program, npu).trace
        path = critical_path(program, trace)
        assert path.segments == []
        assert path.makespan_cycles == 0.0


class TestRealPrograms:
    @pytest.fixture(scope="class")
    def run(self):
        npu = tiny_test_machine(3)
        compiled = compile_model(make_mixed_graph(), npu, CompileOptions.base())
        return npu, compiled, simulate(compiled.program, npu)

    def test_path_starts_at_makespan(self, run):
        npu, compiled, sim = run
        path = critical_path(compiled.program, sim.trace)
        assert path.segments[0].event.end == pytest.approx(sim.trace.makespan)

    def test_path_is_time_monotone(self, run):
        npu, compiled, sim = run
        path = critical_path(compiled.program, sim.trace)
        starts = [seg.event.start for seg in path.segments]
        assert starts == sorted(starts, reverse=True) or all(
            a >= b - 1e-6 for a, b in zip(starts, starts[1:])
        )

    def test_breakdown_covers_makespan(self, run):
        npu, compiled, sim = run
        path = critical_path(compiled.program, sim.trace)
        total = sum(path.breakdown().values())
        assert total == pytest.approx(path.makespan_cycles, rel=1e-6)

    def test_render(self, run):
        npu, compiled, sim = run
        text = render_critical_path(compiled.program, sim.trace, npu)
        assert "Critical path breakdown" in text
        assert "Bound by" in text

    def test_layers_listed(self, run):
        npu, compiled, sim = run
        path = critical_path(compiled.program, sim.trace)
        assert path.layers()


class TestTieBreaking:
    """Binding attribution is deterministic under exact timing ties.

    Rule (shared by the trace walker and the static longest-path DP in
    ``longest_path_times``): among predecessors finishing within EPS of
    a command's start, a dependency beats the engine queue, and among
    tied dependencies the latest-ending one wins with the smallest cid
    as the final tie-break.
    """

    def _tied_program(self):
        # c0 and c1 run identical work on identical cores, so both end
        # at exactly the same instant; x depends on both AND queues
        # behind c0 on core 0's compute engine -- a three-way tie.
        b = ProgramBuilder(2)
        c0 = b.add(0, CommandKind.COMPUTE, macs=640)
        c1 = b.add(1, CommandKind.COMPUTE, macs=640)
        x = b.add(0, CommandKind.COMPUTE, deps=[c0, c1], macs=640)
        return b.build(), c0, c1, x

    def test_trace_mode_prefers_dep_smallest_cid(self):
        program, c0, c1, x = self._tied_program()
        npu = tiny_test_machine(2)
        trace = simulate(program, npu).trace
        path = critical_path(program, trace)
        assert path.segments[0].event.cid == x
        # dep beats engine; among the tied deps c0 < c1 wins.
        assert path.segments[0].bound_by == "dep"
        assert path.segments[1].event.cid == c0

    def test_static_mode_matches_trace_mode(self):
        from repro.analysis import longest_path_times, walk_bindings

        program, c0, c1, x = self._tied_program()
        durations = [10.0, 10.0, 10.0]
        starts, finishes, bindings = longest_path_times(program, durations)
        assert starts[x] == pytest.approx(10.0)
        assert bindings[x] == (c0, "dep")
        last = max(range(3), key=lambda c: (finishes[c], -c))
        chain = walk_bindings(bindings, last)
        cids = [cid for cid, _ in chain]
        assert cids == sorted(cids, reverse=True)  # strictly decreasing
        assert cids == [x, c0]

    def test_repeated_extraction_is_stable(self):
        program, *_ = self._tied_program()
        npu = tiny_test_machine(2)
        trace = simulate(program, npu).trace
        a = critical_path(program, trace)
        b2 = critical_path(program, trace)
        assert [s.event.cid for s in a.segments] == [
            s.event.cid for s in b2.segments
        ]
        assert [s.bound_by for s in a.segments] == [
            s.bound_by for s in b2.segments
        ]
