"""Request-level serving simulator on top of the compiler + machine sim.

``repro.serve`` answers the question the per-program simulator cannot:
what happens when inference *requests* arrive over time and a scheduler
must decide which ones run when, on which cores.  See
:mod:`repro.serve.server` for the execution model.
"""

from repro.serve.degraded import serve_degraded
from repro.serve.metrics import (
    DegradedStats,
    ServeReport,
    ShedRecord,
    build_report,
    percentile,
)
from repro.serve.policies import (
    Assignment,
    DynamicPolicy,
    FifoPolicy,
    POLICY_NAMES,
    SchedulingPolicy,
    SjfPolicy,
    get_policy,
)
from repro.serve.predictor import LatencyPredictor, resolve_graph
from repro.serve.request import (
    MixEntry,
    Request,
    RequestResult,
    generate_requests,
)
from repro.serve.server import serve, serve_policies

__all__ = [
    "Assignment",
    "DegradedStats",
    "DynamicPolicy",
    "FifoPolicy",
    "LatencyPredictor",
    "MixEntry",
    "POLICY_NAMES",
    "Request",
    "RequestResult",
    "SchedulingPolicy",
    "ServeReport",
    "ShedRecord",
    "SjfPolicy",
    "build_report",
    "generate_requests",
    "get_policy",
    "percentile",
    "resolve_graph",
    "serve",
    "serve_degraded",
    "serve_policies",
]
