"""Banded (2-D) and input-resident tiling for SPM-constrained sub-layers."""

import dataclasses


from repro.cost.memory import aligned_region_bytes, aligned_weight_bytes
from repro.hw import tiny_test_machine
from repro.ir import Conv2D, Graph, Input, Region, TensorShape, Window2D
from repro.schedule.tiling import plan_tiles


def conv_layer(h=16, c_in=64, c_out=64, kernel=3, dilation=1):
    g = Graph("g")
    g.add("in", Input(TensorShape(h, h, c_in)))
    g.add(
        "c",
        Conv2D(
            out_channels=c_out,
            in_channels=c_in,
            window=Window2D.square(kernel, dilation=dilation),
        ),
        ["in"],
    )
    return g.layer("c")


def machine(spm_bytes):
    npu = tiny_test_machine(1)
    cores = tuple(dataclasses.replace(c, spm_bytes=spm_bytes) for c in npu.cores)
    return dataclasses.replace(npu, cores=cores)


def tile_fits(layer, plan, core, budget):
    """Every tile's band weights + double-buffered streams fit."""
    for tile in plan.tiles:
        wregion = Region(
            Region.full(layer.output_shape).rows,
            Region.full(layer.output_shape).cols,
            tile.out_region.chans,
        )
        w = aligned_weight_bytes(
            layer.op.weight_elements_for_output(wregion, layer.output_shape),
            layer.dtype,
            core,
        )
        in_b = aligned_region_bytes(
            layer.input_region(tile.out_region, 0), layer.dtype, core
        )
        out_b = aligned_region_bytes(tile.out_region, layer.dtype, core)
        if plan.input_resident:
            full_in = aligned_region_bytes(
                layer.input_region(Region.full(layer.output_shape), 0),
                layer.dtype,
                core,
            )
            assert full_in + w + 2 * out_b <= budget
        else:
            assert w + 2 * (in_b + out_b) <= budget * 1.01


class TestBandedTiling:
    def test_weight_dominated_layer_gets_bands(self):
        # weights 3x3x64x64 = 36 KB >> 8 KB SPM.
        layer = conv_layer()
        npu = machine(8 * 1024)
        plan = plan_tiles(layer, Region.full(layer.output_shape), 0, npu)
        assert plan.num_weight_bands > 1
        assert plan.axis in ("hc", "c")

    def test_bands_cover_output(self):
        layer = conv_layer()
        npu = machine(8 * 1024)
        plan = plan_tiles(layer, Region.full(layer.output_shape), 0, npu)
        total = sum(t.out_region.num_elements for t in plan.tiles)
        assert total == layer.output_shape.num_elements
        # tiles within a band must not overlap; across bands channels differ.
        for a in plan.tiles:
            for b in plan.tiles:
                if a is not b:
                    assert a.out_region.intersect(b.out_region).is_empty

    def test_band_working_sets_fit(self):
        # 12 KB is the smallest budget this layer's banded streaming can
        # honour (one aligned row tile carries a 2-row halo).
        layer = conv_layer()
        npu = machine(12 * 1024)
        plan = plan_tiles(layer, Region.full(layer.output_shape), 0, npu)
        tile_fits(layer, plan, npu.core(0), 12 * 1024)

    def test_macs_conserved(self):
        layer = conv_layer()
        npu = machine(8 * 1024)
        plan = plan_tiles(layer, Region.full(layer.output_shape), 0, npu)
        assert sum(t.macs for t in plan.tiles) == layer.macs()

    def test_tiles_grouped_by_band(self):
        """A band's tiles are contiguous so its weights load only once."""
        layer = conv_layer()
        npu = machine(8 * 1024)
        plan = plan_tiles(layer, Region.full(layer.output_shape), 0, npu)
        seen = []
        for t in plan.tiles:
            if not seen or seen[-1] != t.weight_band:
                seen.append(t.weight_band)
        assert seen == sorted(set(seen))


class TestInputResidentTiling:
    def test_dilation_dominated_layer_goes_resident(self):
        # dilation 6 on a 16-row map: any row tile needs nearly the whole
        # input, so streaming row tiles cannot shrink below the tensor.
        layer = conv_layer(h=16, c_in=32, c_out=32, dilation=6)
        npu = machine(12 * 1024)
        plan = plan_tiles(layer, Region.full(layer.output_shape), 0, npu)
        # either the planner found a fitting stream plan or it switched
        # to the input-resident pattern; for this geometry it must switch.
        assert plan.input_resident

    def test_resident_plan_covers_output(self):
        layer = conv_layer(h=16, c_in=32, c_out=32, dilation=6)
        npu = machine(12 * 1024)
        plan = plan_tiles(layer, Region.full(layer.output_shape), 0, npu)
        total = sum(t.out_region.num_elements for t in plan.tiles)
        assert total == layer.output_shape.num_elements


class TestLoweringIntegration:
    def test_banded_sublayer_emits_per_band_weight_loads(self):
        from repro.compiler import CommandKind, CompileOptions, compile_model

        g = Graph("g")
        g.add("in", Input(TensorShape(16, 16, 64)))
        g.add(
            "c",
            Conv2D(out_channels=64, in_channels=64, window=Window2D.square(3)),
            ["in"],
        )
        npu = machine(8 * 1024)
        m = compile_model(g, npu, CompileOptions.single_core())
        weight_loads = [
            c
            for c in m.program.commands
            if c.kind is CommandKind.LOAD_WEIGHT and c.layer == "c"
        ]
        assert len(weight_loads) > 1
        total_weight_bytes = sum(c.num_bytes for c in weight_loads)
        assert total_weight_bytes == g.layer("c").weight_bytes()

    def test_banded_still_functionally_exact(self):
        from repro.compiler import CompileOptions, compile_model
        from repro.runtime import run_compiled_functional

        g = Graph("g")
        g.add("in", Input(TensorShape(16, 16, 64)))
        g.add(
            "c",
            Conv2D(out_channels=64, in_channels=64, window=Window2D.square(3)),
            ["in"],
        )
        npu = machine(8 * 1024)
        report = run_compiled_functional(
            compile_model(g, npu, CompileOptions.single_core())
        )
        assert report.max_abs_error == 0.0
