"""Analytical cost model shared by the compiler heuristics."""

from repro.cost.compute import OP_LAUNCH_CYCLES, compute_cycles, layer_compute_cycles
from repro.cost.memory import (
    align_up,
    aligned_region_bytes,
    aligned_weight_bytes,
    ceil_div,
    fits_in_spm,
    spm_tensor_bytes,
    transfer_cycles,
)
from repro.cost.sync import (
    redundant_compute_cost_cycles,
    store_load_roundtrip_cycles,
    sync_cost_cycles,
)

__all__ = [
    "OP_LAUNCH_CYCLES",
    "align_up",
    "aligned_region_bytes",
    "aligned_weight_bytes",
    "ceil_div",
    "compute_cycles",
    "fits_in_spm",
    "layer_compute_cycles",
    "redundant_compute_cost_cycles",
    "spm_tensor_bytes",
    "store_load_roundtrip_cycles",
    "sync_cost_cycles",
    "transfer_cycles",
]
