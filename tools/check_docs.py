#!/usr/bin/env python
"""Docs-consistency checker for CI.

Static checks (always):

* every relative link / backticked ``docs/*.md`` reference from the
  top-level markdown files and everything under ``docs/`` resolves to a
  file that exists;
* every package under ``src/repro`` is documented -- mentioned as
  ``repro.<name>`` in ``docs/architecture.md`` or
  ``docs/paper_mapping.md``;
* every markdown file in ``docs/`` is linked from the
  ``docs/README.md`` index.

With ``--exec``, additionally smoke-executes the ``python -m repro``
command lines found in fenced ``bash`` blocks of ``docs/README.md``,
rewritten onto fast paths (short serving windows, single-model lint)
so the tour in the docs cannot rot.

Exit status is the number of failures; findings go to stdout.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# markdown files whose references we police.
TOP_LEVEL_DOCS = ("README.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md")

_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")
_TICKED_DOC = re.compile(r"`((?:docs/)?[\w./-]+\.md)`")


def _markdown_files(repo: pathlib.Path) -> list[pathlib.Path]:
    files = [repo / name for name in TOP_LEVEL_DOCS if (repo / name).exists()]
    files.extend(sorted((repo / "docs").glob("*.md")))
    return files


def check_links(repo: pathlib.Path = REPO) -> list[str]:
    """Every relative markdown reference must resolve to a real file."""
    problems = []
    for md in _markdown_files(repo):
        text = md.read_text()
        targets = _LINK.findall(text)
        targets += [t for t in _TICKED_DOC.findall(text) if "/" in t]
        for target in targets:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(repo)}: broken reference '{target}'"
                )
    return problems


def check_packages_documented(repo: pathlib.Path = REPO) -> list[str]:
    """Each repro package must appear in architecture.md or paper_mapping.md."""
    corpus = ""
    for name in ("architecture.md", "paper_mapping.md"):
        path = repo / "docs" / name
        if path.exists():
            corpus += path.read_text()
        else:
            return [f"docs/{name} is missing"]
    problems = []
    src = repo / "src" / "repro"
    packages = sorted(
        p.name for p in src.iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    )
    packages.append("cli")
    for package in packages:
        if f"repro.{package}" not in corpus:
            problems.append(
                f"package repro.{package} is documented in neither "
                "docs/architecture.md nor docs/paper_mapping.md"
            )
    return problems


def check_docs_indexed(repo: pathlib.Path = REPO) -> list[str]:
    """docs/README.md must link every markdown file living in docs/."""
    index = repo / "docs" / "README.md"
    if not index.exists():
        return ["docs/README.md is missing"]
    text = index.read_text()
    problems = []
    for doc in sorted((repo / "docs").glob("*.md")):
        if doc.name == "README.md":
            continue
        if f"({doc.name})" not in text:
            problems.append(f"docs/README.md does not link {doc.name}")
    return problems


def _bash_snippets(path: pathlib.Path) -> list[str]:
    """Logical command lines from fenced ``bash`` blocks (joining '\\')."""
    lines: list[str] = []
    in_bash = False
    for raw in path.read_text().splitlines():
        if raw.strip().startswith("```"):
            in_bash = raw.strip() == "```bash"
            continue
        if not in_bash or not raw.strip() or raw.lstrip().startswith("#"):
            continue
        if lines and lines[-1].endswith("\\"):
            lines[-1] = lines[-1][:-1].rstrip() + " " + raw.strip()
        else:
            lines.append(raw.strip())
    return lines


def _fast_path(command: str) -> str:
    """Rewrite a doc command onto a smoke-test-sized equivalent."""
    command = command.split("#", 1)[0].strip()
    if " serve" in command and "--duration-short" not in command:
        command += " --duration-short --requests 6"
    if " sweep" in command and "--seeds" not in command:
        command += " --seeds 1"
    if " autotune" in command and "--budget" not in command:
        command += " --budget 12"
    command = command.replace(" lint all", " lint stem")
    return command


def run_snippets(repo: pathlib.Path = REPO) -> list[str]:
    """Smoke-execute the ``python -m repro`` lines from docs/README.md."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(repo / "src"), env.get("PYTHONPATH", "")])
    )
    problems = []
    for snippet in _bash_snippets(repo / "docs" / "README.md"):
        if not snippet.startswith("python -m repro"):
            continue  # pip installs, pytest runs, example scripts
        command = _fast_path(snippet)
        print(f"  exec: {command}")
        proc = subprocess.run(
            [sys.executable, "-m", "repro"] + command.split()[3:],
            cwd=repo, env=env, capture_output=True, text=True, timeout=300,
        )
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-5:]
            problems.append(
                f"docs/README.md snippet failed ({proc.returncode}): "
                f"{snippet!r}\n    " + "\n    ".join(tail)
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--exec", dest="execute", action="store_true",
        help="also smoke-execute the repro CLI snippets in docs/README.md",
    )
    args = parser.parse_args(argv)

    problems = check_links() + check_packages_documented() + check_docs_indexed()
    if args.execute:
        problems += run_snippets()
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print("docs consistent" + (" (snippets executed)" if args.execute else ""))
    return len(problems)


if __name__ == "__main__":
    raise SystemExit(main())
