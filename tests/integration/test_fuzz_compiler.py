"""Compiler fuzzing: random graphs through the full pipeline.

Hypothesis builds random (but valid) DAGs of mixed operators; each is
compiled under every optimization level and core count, simulated, and
executed through the functional oracle.  Any slicing, halo, stratum,
forwarding, banding, or barrier-placement bug in the compiler shows up
as a locality violation or a numeric mismatch.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import audit_spm
from repro.compiler import CompileOptions, compile_model
from repro.hw import tiny_test_machine
from repro.ir import (
    Add,
    Concat,
    Conv2D,
    DepthwiseConv2D,
    Graph,
    Input,
    Mul,
    Padding,
    Pool2D,
    PoolKind,
    TensorShape,
    Window2D,
)
from repro.runtime import run_compiled_functional
from repro.sim import simulate


@st.composite
def random_graph(draw) -> Graph:
    g = Graph("fuzz")
    h = draw(st.sampled_from([12, 17, 24, 33]))
    c = draw(st.sampled_from([4, 8, 12]))
    g.add("in", Input(TensorShape(h, h, c)))
    # open tensors available as inputs, with their shapes.
    open_tensors = {"in": g.layer("in").output_shape}
    n_layers = draw(st.integers(2, 8))
    for i in range(n_layers):
        name = f"l{i}"
        src = draw(st.sampled_from(sorted(open_tensors)))
        shape = open_tensors[src]
        kind = (
            "conv"
            if i == 0  # guarantee at least one computing layer
            else draw(
                st.sampled_from(
                    ["conv", "conv_s2", "dw", "pool", "add", "concat", "mul"]
                )
            )
        )
        if kind == "conv":
            out_c = draw(st.sampled_from([4, 8, 16]))
            kernel = draw(st.sampled_from([1, 3, 5]))
            g.add(
                name,
                Conv2D(
                    out_channels=out_c,
                    in_channels=shape.c,
                    window=Window2D.square(kernel),
                ),
                [src],
            )
        elif kind == "conv_s2" and shape.h >= 8:
            out_c = draw(st.sampled_from([4, 8]))
            g.add(
                name,
                Conv2D(
                    out_channels=out_c,
                    in_channels=shape.c,
                    window=Window2D.square(3, stride=2),
                ),
                [src],
            )
        elif kind == "dw":
            g.add(
                name,
                DepthwiseConv2D(channels=shape.c, window=Window2D.square(3)),
                [src],
            )
        elif kind == "pool" and shape.h >= 4:
            g.add(
                name,
                Pool2D(
                    PoolKind.MAX, Window2D.square(2, 2, padding=Padding.VALID)
                ),
                [src],
            )
        elif kind in ("add", "mul"):
            partners = [
                other
                for other, s in open_tensors.items()
                if s == shape and other != src
            ]
            if not partners:
                continue
            partner = draw(st.sampled_from(sorted(partners)))
            op = Add() if kind == "add" else Mul()
            g.add(name, op, [src, partner])
        elif kind == "concat":
            partners = [
                other
                for other, s in open_tensors.items()
                if (s.h, s.w) == (shape.h, shape.w) and other != src
            ]
            if not partners:
                continue
            partner = draw(st.sampled_from(sorted(partners)))
            g.add(name, Concat(), [src, partner])
        else:
            continue
        open_tensors[name] = g.layer(name).output_shape
    g.validate()
    return g


CONFIGS = [
    CompileOptions.base(),
    CompileOptions.halo(),
    CompileOptions.stratum_config(),
]


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    graph=random_graph(),
    cores=st.integers(1, 3),
    config=st.sampled_from(CONFIGS),
)
def test_fuzz_functional_exactness(graph, cores, config):
    npu = tiny_test_machine(cores)
    compiled = compile_model(graph, npu, config)
    report = run_compiled_functional(compiled)
    assert report.max_abs_error == 0.0


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(graph=random_graph(), config=st.sampled_from(CONFIGS))
def test_fuzz_simulation_and_audit(graph, config):
    npu = tiny_test_machine(3)
    compiled = compile_model(graph, npu, config)
    result = simulate(compiled.program, npu)
    assert result.makespan_cycles > 0
    # no compiled sub-layer may claim more SPM than the core has.
    _, violations = audit_spm(compiled, tolerance=1.0)
    assert violations == []


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(graph=random_graph())
def test_fuzz_small_spm_still_exact(graph):
    """Cramped SPM exercises banding / input-resident / degraded paths."""
    npu = tiny_test_machine(2)
    cramped = dataclasses.replace(
        npu,
        cores=tuple(
            dataclasses.replace(c, spm_bytes=4 * 1024) for c in npu.cores
        ),
    )
    compiled = compile_model(graph, cramped, CompileOptions.halo())
    report = run_compiled_functional(compiled)
    assert report.max_abs_error == 0.0


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(graph=random_graph())
def test_fuzz_passes_preserve_semantics(graph):
    """The front-end pass pipeline never changes what the graph computes."""
    import numpy as np

    from repro.ir import optimize
    from repro.runtime import run_reference

    keep = [l.name for l in graph.outputs()]
    optimized, report = optimize(graph, keep=keep)
    before = run_reference(graph, seed=11)
    after = run_reference(optimized, seed=11)
    for name in keep:
        np.testing.assert_allclose(before[name], after[name], atol=1e-12)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(graph=random_graph(), cores=st.integers(2, 3))
def test_fuzz_rebalanced_compile_still_exact(graph, cores):
    """Profile-guided rebalancing keeps the dataflow bit-exact."""
    from repro.compiler import profile_guided_rebalance

    npu = tiny_test_machine(cores)
    compiled, _, _ = profile_guided_rebalance(
        graph, npu, CompileOptions.halo(), max_iterations=1
    )
    report = run_compiled_functional(compiled)
    assert report.max_abs_error == 0.0
