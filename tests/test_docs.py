"""Documentation consistency (the static half of tools/check_docs.py).

Snippet execution stays in CI (``tools/check_docs.py --exec``); here we
run the cheap structural checks on every test run and pin the checker's
own detection logic against synthetic breakage.
"""

from __future__ import annotations

import importlib.util
import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRepoDocs:
    def test_no_broken_references(self):
        assert check_docs.check_links() == []

    def test_every_package_documented(self):
        assert check_docs.check_packages_documented() == []

    def test_docs_indexed(self):
        assert check_docs.check_docs_indexed() == []


class TestCheckerDetects:
    def _repo_skeleton(self, tmp_path: pathlib.Path) -> pathlib.Path:
        (tmp_path / "docs").mkdir()
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "docs" / "architecture.md").write_text("# arch\n")
        (tmp_path / "docs" / "paper_mapping.md").write_text("# map\n")
        (tmp_path / "docs" / "README.md").write_text(
            "[architecture.md](architecture.md) "
            "[paper_mapping.md](paper_mapping.md)\n"
        )
        return tmp_path

    def test_flags_broken_link(self, tmp_path):
        repo = self._repo_skeleton(tmp_path)
        (repo / "README.md").write_text("see [gone](docs/gone.md)\n")
        problems = check_docs.check_links(repo)
        assert problems and "docs/gone.md" in problems[0]

    def test_flags_undocumented_package(self, tmp_path):
        repo = self._repo_skeleton(tmp_path)
        pkg = repo / "src" / "repro" / "mystery"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        problems = check_docs.check_packages_documented(repo)
        assert any("repro.mystery" in p for p in problems)

    def test_flags_unindexed_doc(self, tmp_path):
        repo = self._repo_skeleton(tmp_path)
        (repo / "docs" / "orphan.md").write_text("# orphan\n")
        problems = check_docs.check_docs_indexed(repo)
        assert problems == ["docs/README.md does not link orphan.md"]

    def test_fast_path_rewrites(self):
        fast = check_docs._fast_path
        assert fast("python -m repro lint all  # whole zoo").endswith("lint stem")
        assert "--duration-short" in fast("python -m repro serve --faults throttle")
        assert "--seeds 1" in fast("python -m repro sweep stem")
        # already-fast commands are left alone.
        cmd = "python -m repro serve stem --duration-short"
        assert fast(cmd) == cmd
