"""Race / synchronization pass (RPR1xx).

The paper's central claim is that its cheaper coordination mechanisms --
lazy barriers, halo-exchange rendezvous, SPM forwarding -- order every
cross-core read after the write that produced the data (Figures 9/12).
This pass proves it from first principles: it re-derives, from the
graph, the partition regions, and the forwarding plan, *which* remote
data every consumer sub-layer reads, and then checks in the
happens-before relation that the consumer's load / receive / compute is
ordered after the producer's store / send / compute.

Codes:

* ``RPR101`` -- consumer load not ordered after a remote producer store
* ``RPR102`` -- consumer load not ordered after the same-core producer store
* ``RPR103`` -- remote data is read but no transport exists (missing
  halo receive, or a FORWARD edge whose local slice does not cover)
* ``RPR104`` -- halo receive not ordered after its peer's send
* ``RPR105`` -- halo receive never consumed by any compute
* ``RPR106`` -- halo send not ordered after any producing compute
* ``RPR107`` -- forwarded SPM input: producer computes not ordered
  before consumer computes on the core
* ``RPR108`` -- consumer streams an input but emits no load commands
* ``RPR109`` -- consumer streams an input whose producer never stores
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.compiler.allocator import InputMode
from repro.compiler.program import Command, CommandKind
from repro.verify.diagnostics import PassResult
from repro.verify.hb import HappensBefore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.compiler import CompiledModel


def _group_commands(program) -> Dict[Tuple[str, int, CommandKind], List[Command]]:
    groups: Dict[Tuple[str, int, CommandKind], List[Command]] = {}
    for cmd in program.commands:
        groups.setdefault((cmd.layer, cmd.core, cmd.kind), []).append(cmd)
    return groups


def check_races(compiled: "CompiledModel", hb: HappensBefore) -> PassResult:
    """Run the race/sync pass over one compiled model."""
    result = PassResult(name="race")
    program = compiled.program
    graph = compiled.graph
    npu = compiled.npu
    forwarding = compiled.forwarding
    regions = compiled.exec_regions

    groups = _group_commands(program)
    edges = 0
    pairs = 0

    for name in compiled.schedule:
        layer = graph.layer(name)
        if layer.is_input:
            continue
        for i, producer_name in enumerate(layer.inputs):
            producer = graph.layer(producer_name)
            if producer.is_input:
                continue
            decision = forwarding.decision(name, i)
            mode = decision.mode if decision is not None else InputMode.GLOBAL
            streams = not mode.is_forwarding
            cons_regions = regions[name]
            prod_regions = regions[producer_name]
            edges += 1

            for c in range(npu.num_cores):
                out_region = cons_regions[c]
                if out_region.is_empty:
                    continue
                needed = layer.input_region(out_region, i)
                if needed.is_empty:
                    continue
                owned_local = prod_regions[c] if c < len(prod_regions) else None
                loads = groups.get((name, c, CommandKind.LOAD_INPUT), [])
                computes = groups.get((name, c, CommandKind.COMPUTE), [])
                recvs = groups.get((name, c, CommandKind.HALO_RECV), [])

                # ---- local slice: stream ordered after same-core store
                local_part = (
                    needed.intersect(owned_local) if owned_local is not None else None
                )
                if (
                    streams
                    and local_part is not None
                    and not local_part.is_empty
                    and forwarding.stores.get(producer_name, False)
                ):
                    local_stores = groups.get(
                        (producer_name, c, CommandKind.STORE_OUTPUT), []
                    )
                    if local_stores:
                        last_store = local_stores[-1]
                        if not loads:
                            result.emit(
                                "RPR108",
                                f"input {i} ({producer_name}) is streamed but "
                                f"the sub-layer emits no load commands",
                                layer=name,
                                core=c,
                            )
                        for ld in loads:
                            pairs += 1
                            if not hb.ordered(last_store.cid, ld.cid):
                                result.emit(
                                    "RPR102",
                                    f"load #{ld.cid} reads {producer_name} from "
                                    f"global memory but is not ordered after "
                                    f"the same core's store #{last_store.cid}",
                                    layer=name,
                                    core=c,
                                    cid=ld.cid,
                                    hint="the lowering must add the last-store "
                                    "dependency (or a barrier) to every load",
                                )

                # ---- forwarded (SPM-resident) local slice
                if mode.is_forwarding:
                    prod_computes = groups.get(
                        (producer_name, c, CommandKind.COMPUTE), []
                    )
                    if prod_computes and computes:
                        pairs += 1
                        if not hb.ordered(prod_computes[-1].cid, computes[0].cid):
                            result.emit(
                                "RPR107",
                                f"forwarded input {i} ({producer_name}): producer "
                                f"computes are not ordered before consumer computes",
                                layer=name,
                                core=c,
                                cid=computes[0].cid,
                                hint="same-core compute order must follow the "
                                "schedule when feature maps stay in the SPM",
                            )

                # ---- remote slices, one producer core at a time
                for j in range(npu.num_cores):
                    if j == c or j >= len(prod_regions):
                        continue
                    owned_remote = prod_regions[j]
                    if owned_remote.is_empty:
                        continue
                    remote = needed.intersect(owned_remote)
                    if remote.is_empty:
                        continue
                    if owned_local is not None and owned_local.contains(remote):
                        # Locally recomputed (stratum inflation): nothing moves.
                        continue
                    pairs += 1
                    if mode.uses_halo:
                        _check_halo_edge(
                            result, hb, groups, name, producer_name,
                            c, j, recvs, computes,
                        )
                    elif streams:
                        _check_global_edge(
                            result, hb, groups, name, producer_name, i,
                            c, j, loads, forwarding,
                        )
                    else:
                        result.emit(
                            "RPR103",
                            f"FORWARD input {i} ({producer_name}) needs remote "
                            f"data from core {j} but forwarding keeps only the "
                            f"local slice resident",
                            layer=name,
                            core=c,
                            hint="the edge should have been GLOBAL or *_HALO, "
                            "or the producer regions must cover locally",
                        )

    # ---- every receive must feed some compute
    for (lname, core, kind), cmds in groups.items():
        if kind is not CommandKind.HALO_RECV:
            continue
        computes = groups.get((lname, core, CommandKind.COMPUTE), [])
        for recv in cmds:
            if not any(hb.ordered(recv.cid, k.cid) for k in computes):
                result.emit(
                    "RPR105",
                    f"halo receive #{recv.cid} is never consumed by any "
                    f"compute of its sub-layer",
                    layer=lname,
                    core=core,
                    cid=recv.cid,
                    hint="received data that no compute waits for is either "
                    "dead traffic or an ordering bug",
                )

    result.stats["edges"] = edges
    result.stats["ordering_checks"] = pairs
    return result


def _check_global_edge(
    result: PassResult,
    hb: HappensBefore,
    groups: Dict[Tuple[str, int, CommandKind], List[Command]],
    name: str,
    producer_name: str,
    input_index: int,
    c: int,
    j: int,
    loads: List[Command],
    forwarding,
) -> None:
    """Store-sync-load path: loads on ``c`` after stores on ``j``."""
    if not forwarding.stores.get(producer_name, False):
        result.emit(
            "RPR109",
            f"input {input_index} ({producer_name}) is streamed from global "
            f"memory but its producer never stores",
            layer=name,
            core=c,
            hint="forwarding.stores disagrees with the input mode",
        )
        return
    remote_stores = groups.get((producer_name, j, CommandKind.STORE_OUTPUT), [])
    if not remote_stores:
        result.emit(
            "RPR109",
            f"core {c} reads {producer_name} data owned by core {j}, "
            f"which emitted no store commands",
            layer=name,
            core=c,
        )
        return
    if not loads:
        result.emit(
            "RPR108",
            f"input {input_index} ({producer_name}) is streamed but the "
            f"sub-layer emits no load commands",
            layer=name,
            core=c,
        )
        return
    last_store = remote_stores[-1]
    for ld in loads:
        if not hb.ordered(last_store.cid, ld.cid):
            result.emit(
                "RPR101",
                f"load #{ld.cid} reads {producer_name} data stored by core "
                f"{j} (store #{last_store.cid}) without a happens-before "
                f"ordering -- a cross-core data race",
                layer=name,
                core=c,
                cid=ld.cid,
                hint="a barrier (or halo exchange) must order the consumer "
                "after the remote store",
            )


def _check_halo_edge(
    result: PassResult,
    hb: HappensBefore,
    groups: Dict[Tuple[str, int, CommandKind], List[Command]],
    name: str,
    producer_name: str,
    c: int,
    j: int,
    recvs: List[Command],
    computes: List[Command],
) -> None:
    """Halo rendezvous: recv on ``c`` after send on ``j`` after compute."""
    if not recvs:
        result.emit(
            "RPR103",
            f"core {c} needs halo data of {producer_name} from core {j} "
            f"but emits no halo receive",
            layer=name,
            core=c,
            hint="the lowering must emit a HALO_RECV for every non-empty "
            "remote piece",
        )
        return
    sends = groups.get((producer_name, j, CommandKind.HALO_SEND), [])
    matched = [
        (s, r)
        for r in recvs
        for s in sends
        if hb.ordered(s.cid, r.cid)
    ]
    if not matched:
        result.emit(
            "RPR104",
            f"no halo receive on core {c} is ordered after a matching "
            f"send of {producer_name} on core {j}",
            layer=name,
            core=c,
            cid=recvs[0].cid,
            hint="the receive must list the peer send as a dependency "
            "(the rendezvous is the synchronization)",
        )
        return
    prod_computes = groups.get((producer_name, j, CommandKind.COMPUTE), [])
    for s, _ in matched:
        if prod_computes and not any(
            hb.ordered(k.cid, s.cid) for k in prod_computes
        ):
            result.emit(
                "RPR106",
                f"halo send #{s.cid} of {producer_name} on core {j} is not "
                f"ordered after any compute that produces the sent data",
                layer=producer_name,
                core=j,
                cid=s.cid,
                hint="the send must depend on the computes covering the "
                "halo region",
            )
