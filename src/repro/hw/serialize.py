"""Machine description (de)serialization to JSON.

Lets users define their own NPU in a file and run any CLI command or
script against it -- the hardware/software co-design workflow of
``examples/design_space.py`` without writing Python.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

from repro.hw.config import CoreConfig, NPUConfig

FORMAT = "repro-machine"
VERSION = 1


def machine_to_dict(npu: NPUConfig) -> Dict:
    return {
        "format": FORMAT,
        "version": VERSION,
        "name": npu.name,
        "frequency_ghz": npu.frequency_ghz,
        "bus_bytes_per_cycle": npu.bus_bytes_per_cycle,
        "sync_base_cycles": npu.sync_base_cycles,
        "sync_per_core_cycles": npu.sync_per_core_cycles,
        "halo_exchange_base_cycles": npu.halo_exchange_base_cycles,
        "dram_latency_cycles": npu.dram_latency_cycles,
        "sync_jitter_cycles": npu.sync_jitter_cycles,
        "halo_jitter_cycles": npu.halo_jitter_cycles,
        "cores": [
            {
                "name": c.name,
                "macs_per_cycle": c.macs_per_cycle,
                "dma_bytes_per_cycle": c.dma_bytes_per_cycle,
                "spm_bytes": c.spm_bytes,
                "channel_alignment": c.channel_alignment,
                "spatial_alignment": c.spatial_alignment,
                "compute_efficiency": c.compute_efficiency,
                "dvfs_steps": list(c.dvfs_steps),
                "heat_per_busy_cycle": c.heat_per_busy_cycle,
                "cool_per_cycle": c.cool_per_cycle,
                "throttle_threshold": c.throttle_threshold,
            }
            for c in npu.cores
        ],
    }


def machine_from_dict(data: Dict) -> NPUConfig:
    if data.get("format") != FORMAT:
        raise ValueError("not a repro machine document")
    if data.get("version") != VERSION:
        raise ValueError(f"unsupported machine format version {data.get('version')!r}")
    cores = tuple(
        CoreConfig(
            name=str(c["name"]),
            macs_per_cycle=int(c["macs_per_cycle"]),
            dma_bytes_per_cycle=float(c["dma_bytes_per_cycle"]),
            spm_bytes=int(c["spm_bytes"]),
            channel_alignment=int(c.get("channel_alignment", 16)),
            spatial_alignment=int(c.get("spatial_alignment", 2)),
            compute_efficiency=float(c.get("compute_efficiency", 0.75)),
            dvfs_steps=tuple(
                float(s) for s in c.get("dvfs_steps", (1.0, 0.8, 0.6))
            ),
            heat_per_busy_cycle=float(c.get("heat_per_busy_cycle", 1.0)),
            cool_per_cycle=float(c.get("cool_per_cycle", 0.4)),
            throttle_threshold=float(c.get("throttle_threshold", 150_000.0)),
        )
        for c in data["cores"]
    )
    return NPUConfig(
        name=str(data.get("name", "custom")),
        cores=cores,
        bus_bytes_per_cycle=float(data["bus_bytes_per_cycle"]),
        frequency_ghz=float(data.get("frequency_ghz", 1.2)),
        sync_base_cycles=int(data.get("sync_base_cycles", 4000)),
        sync_per_core_cycles=int(data.get("sync_per_core_cycles", 500)),
        halo_exchange_base_cycles=int(data.get("halo_exchange_base_cycles", 800)),
        dram_latency_cycles=int(data.get("dram_latency_cycles", 100)),
        sync_jitter_cycles=int(data.get("sync_jitter_cycles", 0)),
        halo_jitter_cycles=int(data.get("halo_jitter_cycles", 0)),
    )


def save_machine(npu: NPUConfig, path: Union[str, pathlib.Path]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(machine_to_dict(npu), indent=2))
    return path


def load_machine(path: Union[str, pathlib.Path]) -> NPUConfig:
    return machine_from_dict(json.loads(pathlib.Path(path).read_text()))
