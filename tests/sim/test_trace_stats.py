"""Trace queries and RunStats aggregation."""

import pytest

from repro.compiler.program import CommandKind, Engine
from repro.hw import tiny_test_machine
from repro.sim.stats import collect_stats
from repro.sim.trace import Trace, TraceEvent


def event(cid, core, kind, start, end, nbytes=0, macs=0, layer="l", own_ready=None):
    engine = {
        CommandKind.LOAD_INPUT: Engine.LOAD,
        CommandKind.LOAD_WEIGHT: Engine.LOAD,
        CommandKind.HALO_RECV: Engine.LOAD,
        CommandKind.COMPUTE: Engine.COMPUTE,
        CommandKind.STORE_OUTPUT: Engine.STORE,
        CommandKind.HALO_SEND: Engine.STORE,
        CommandKind.BARRIER: Engine.CTRL,
    }[kind]
    return TraceEvent(
        cid=cid,
        core=core,
        engine=engine,
        kind=kind,
        layer=layer,
        tag="",
        num_bytes=nbytes,
        macs=macs,
        start=start,
        end=end,
        own_ready=start if own_ready is None else own_ready,
        dep_ready=start,
    )


class TestTrace:
    def test_makespan(self):
        trace = Trace(
            [
                event(0, 0, CommandKind.COMPUTE, 0, 10),
                event(1, 0, CommandKind.COMPUTE, 10, 25),
            ]
        )
        assert trace.makespan == 25

    def test_busy_intervals_merge(self):
        trace = Trace(
            [
                event(0, 0, CommandKind.LOAD_INPUT, 0, 10, nbytes=1),
                event(1, 0, CommandKind.COMPUTE, 5, 20, macs=1),
                event(2, 0, CommandKind.STORE_OUTPUT, 30, 35, nbytes=1),
            ]
        )
        assert trace.busy_intervals(0) == [(0, 20), (30, 35)]
        assert trace.busy_time(0) == 25

    def test_busy_time_by_engine(self):
        trace = Trace(
            [
                event(0, 0, CommandKind.LOAD_INPUT, 0, 10, nbytes=1),
                event(1, 0, CommandKind.COMPUTE, 5, 20, macs=1),
            ]
        )
        assert trace.busy_time(0, Engine.LOAD) == 10
        assert trace.busy_time(0, Engine.COMPUTE) == 15

    def test_filters(self):
        trace = Trace(
            [
                event(0, 0, CommandKind.COMPUTE, 0, 1, layer="a"),
                event(1, 1, CommandKind.COMPUTE, 0, 1, layer="b"),
            ]
        )
        assert len(trace.for_core(0)) == 1
        assert len(trace.for_layer("b")) == 1
        assert len(trace.for_layers(["a", "b"])) == 2
        assert len(trace.of_kind(CommandKind.COMPUTE)) == 2

    def test_remote_wait(self):
        e = event(0, 0, CommandKind.BARRIER, 10, 15, own_ready=4)
        assert e.remote_wait == 6
        assert e.duration == 5


class TestStats:
    def make_trace(self):
        return Trace(
            [
                event(0, 0, CommandKind.LOAD_INPUT, 0, 10, nbytes=100),
                event(1, 0, CommandKind.LOAD_WEIGHT, 10, 12, nbytes=20),
                event(2, 0, CommandKind.COMPUTE, 12, 30, macs=500),
                event(3, 0, CommandKind.STORE_OUTPUT, 30, 40, nbytes=50),
                event(4, 1, CommandKind.HALO_RECV, 0, 5, nbytes=16, own_ready=0),
                event(5, 0, CommandKind.BARRIER, 40, 45, own_ready=38),
                event(6, 1, CommandKind.BARRIER, 40, 45, own_ready=40),
            ]
        )

    def test_per_core_bytes(self):
        npu = tiny_test_machine(2)
        stats = collect_stats(self.make_trace(), npu)
        assert stats.cores[0].transfer_bytes == 170
        assert stats.cores[1].transfer_bytes == 16
        assert stats.cores[0].bytes_by_kind[CommandKind.LOAD_INPUT] == 100

    def test_latency_conversion(self):
        npu = tiny_test_machine(2)  # 1 GHz
        stats = collect_stats(self.make_trace(), npu)
        assert stats.latency_us == pytest.approx(45 / 1000.0)

    def test_idle(self):
        npu = tiny_test_machine(2)
        stats = collect_stats(self.make_trace(), npu)
        # core 0 busy [0, 45) -> idle 0; core 1 busy [0,5) + [40,45).
        assert stats.cores[0].idle_cycles == pytest.approx(0.0)
        assert stats.cores[1].idle_cycles == pytest.approx(35.0)

    def test_sync_samples(self):
        npu = tiny_test_machine(2)
        stats = collect_stats(self.make_trace(), npu)
        # two barriers (waits 2 and 0 plus durations 5) and one halo recv
        # with no wait.
        assert len(stats.sync_overhead_samples) == 3
        assert stats.num_barriers == 1
        assert stats.num_halo_exchanges == 1

    def test_performance_inverse_latency(self):
        npu = tiny_test_machine(2)
        stats = collect_stats(self.make_trace(), npu)
        assert stats.performance == pytest.approx(1.0 / stats.latency_us)

    def test_total_macs(self):
        npu = tiny_test_machine(2)
        stats = collect_stats(self.make_trace(), npu)
        assert stats.total_macs == 500

    def test_mean_std_helpers(self):
        npu = tiny_test_machine(2)
        stats = collect_stats(self.make_trace(), npu)
        assert stats.transfer_mean_kb == pytest.approx((170 + 16) / 2 / 1024)
        assert stats.idle_mean_us >= 0
        assert stats.idle_std_us >= 0

    def test_empty_trace(self):
        npu = tiny_test_machine(1)
        stats = collect_stats(Trace([]), npu)
        assert stats.latency_us == 0.0
        assert stats.performance == 0.0
