"""cProfile hot-spot harness for one cold simulation.

Prints the top cumulative functions of a single memo-disabled
``simulate`` call (plan cache pre-warmed, so the numbers are the
steady-state hot path, not one-time precomputation), so perf PRs start
from data instead of guesses.

Usage::

    python benchmarks/profile_sim.py
    python benchmarks/profile_sim.py --model UNet --config halo --top 30
    python benchmarks/profile_sim.py --runs 10 --sort tottime
    python benchmarks/profile_sim.py --events   # profile trace reads too

By default only the simulation itself is profiled -- with the columnar
trace that means the event loop plus makespan.  ``--events`` adds one
``trace.events`` read plus a ``collect_stats`` pass to the profiled
region, exposing the lazy column-derivation and materialization costs
that consumers pay on first access.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

from repro.analysis.compare import paper_configurations
from repro.compiler import compile_model
from repro.hw import exynos2100_like
from repro.models import get_model, model_names
from repro.sim import collect_stats, simulate


def _configs():
    # Keyed by normalized label: "+Stratum" is addressable as "stratum".
    return {
        opts.label.lstrip("+").lower(): opts for opts in paper_configurations()
    }


def main() -> int:
    configs = _configs()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="InceptionV3", choices=model_names())
    parser.add_argument(
        "--config",
        default="stratum",
        help=f"configuration label ({', '.join(sorted(configs))})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--runs", type=int, default=5, help="profiled cold runs")
    parser.add_argument("--top", type=int, default=20, help="rows to print")
    parser.add_argument(
        "--sort", default="cumulative", choices=["cumulative", "tottime", "ncalls"]
    )
    parser.add_argument(
        "--events",
        action="store_true",
        help="also profile trace.events materialization and collect_stats",
    )
    args = parser.parse_args()

    options = configs.get(args.config.lstrip("+").lower())
    if options is None:
        parser.error(f"unknown config {args.config!r}; pick from {sorted(configs)}")

    npu = exynos2100_like()
    machine = npu.single_core() if options.is_single_core else npu
    program = compile_model(get_model(args.model), machine, options).program
    simulate(program, machine, seed=args.seed, memo=None)  # warm the plan cache

    def one_run(seed: int) -> None:
        result = simulate(program, machine, seed=seed, memo=None)
        if args.events:
            result.trace.events
            collect_stats(result.trace, machine)

    profiler = cProfile.Profile()
    profiler.enable()
    for i in range(args.runs):
        one_run(args.seed + i)
    profiler.disable()

    events = len(program.commands)
    print(
        f"{args.model} / {args.config} (seed {args.seed}, {args.runs} cold runs, "
        f"{events} events/run{', +events+stats' if args.events else ''})"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
