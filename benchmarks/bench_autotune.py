"""Autotuned schedules vs the h1-h8 heuristics over zoo models.

For each benchmark model and seed, run the default ``beam+anneal``
design-space search (:mod:`repro.compiler.autotune`) against the
+Stratum heuristic compile and record the winner's latency, the search
counters (simulations, bound prunes, verify rejects) and the memo hit
rate.  Acceptance:

* the winner *strictly* beats the heuristic baseline on every
  (model, seed) pair -- the search pays for itself;
* no accepted winner ever failed verification (rejected candidates are
  counted, never crowned);
* the search is bit-reproducible: re-running the pinned (model, seed)
  pair reproduces the full evaluation trajectory, fingerprint for
  fingerprint.

Results land in ``BENCH_autotune.json`` at the repo root (and a text
table under ``benchmarks/out/``).  Run standalone with
``python benchmarks/bench_autotune.py`` or through pytest with
``pytest benchmarks/bench_autotune.py --benchmark-only -s``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List

from repro.analysis import render_autotune_comparison
from repro.analysis.autotune import autotune_summary
from repro.compiler import autotune
from repro.hw import exynos2100_like
from repro.models import get_model

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_autotune.json"

MODELS = ("MobileNetV2", "UNet")
SEEDS = (0, 1, 2)
BUDGET = 48
STRATEGY = "beam+anneal"


def collect(npu) -> Dict[str, object]:
    reports = []
    for model in MODELS:
        graph = get_model(model)
        for seed in SEEDS:
            reports.append(
                autotune(
                    graph, npu, strategy=STRATEGY, budget=BUDGET, seed=seed
                )
            )

    # Determinism probe: the pinned pair must reproduce its trajectory.
    pinned = reports[0]
    rerun = autotune(
        get_model(MODELS[0]), npu, strategy=STRATEGY,
        budget=BUDGET, seed=SEEDS[0],
    )
    deterministic = [
        (r.fingerprint, r.status, r.latency_us) for r in pinned.trajectory
    ] == [
        (r.fingerprint, r.status, r.latency_us) for r in rerun.trajectory
    ] and pinned.best_fingerprint == rerun.best_fingerprint

    summary = autotune_summary(reports)
    summary["strategy"] = STRATEGY
    summary["budget"] = BUDGET
    summary["seeds"] = list(SEEDS)
    summary["deterministic"] = deterministic
    summary["_reports"] = reports  # live objects for rendering; not persisted
    return summary


def _render(results: Dict[str, object]) -> str:
    table = render_autotune_comparison(results["_reports"])
    return (
        f"{table}\n\n"
        f"{results['num_improved']}/{results['num_runs']} runs strictly beat "
        f"h1-h8; geomean speedup {results['geomean_speedup']:.3f}x "
        f"(min {results['min_speedup']:.3f}x, "
        f"max {results['max_speedup']:.3f}x); "
        f"deterministic: {results['deterministic']}"
    )


def _persist(results: Dict[str, object]) -> None:
    payload = {k: v for k, v in results.items() if not k.startswith("_")}
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _check(results: Dict[str, object]) -> None:
    assert results["num_improved"] == results["num_runs"], (
        "autotune failed to strictly beat the heuristics on some "
        "(model, seed) pair"
    )
    assert results["deterministic"], "autotune trajectory not reproducible"
    assert results["min_speedup"] >= 1.0
    for run in results["runs"]:
        # An accepted winner is always a simulated (hence verified)
        # candidate: rejects are counted, never crowned.
        assert run["best_latency_us"] <= run["baseline_latency_us"]


def test_autotune_beats_heuristics(benchmark, npu, out_dir):
    """Runs the DSE search over the benchmark models; asserts strict
    wins, determinism, and verifier-clean winners."""
    results = benchmark.pedantic(lambda: collect(npu), rounds=1, iterations=1)
    benchmark.extra_info["geomean_speedup"] = round(
        float(results["geomean_speedup"]), 3
    )
    benchmark.extra_info["num_improved"] = results["num_improved"]
    _persist(results)

    from benchmarks.conftest import emit

    emit(out_dir, "autotune.txt", _render(results))
    _check(results)


def main() -> int:
    npu = exynos2100_like()
    results = collect(npu)
    _persist(results)
    print(_render(results))
    print(f"\nwritten to {RESULT_PATH}")
    try:
        _check(results)
    except AssertionError as exc:
        print(f"FAILED acceptance check: {exc}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
