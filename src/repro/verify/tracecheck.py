"""Simulation-trace cross-checks (RPR6xx).

The static passes prove properties of the *program*; this module closes
the loop on the *simulator*: a trace claiming an execution order that
violates the program's dependencies or engine-queue semantics means the
latency numbers downstream are fiction.  Checked invariants:

* ``RPR601`` -- an event starts before one of its dependencies ends
* ``RPR602`` -- two events of one engine queue overlap, or run out of
  program order
* ``RPR603`` -- the trace is not a bijection with the program (missing
  or duplicated commands)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compiler.program import Engine, Program
from repro.sim.trace import Trace
from repro.verify.diagnostics import PassResult

#: Slack for float accumulation in the event times.
_EPS = 1e-6


def check_trace(program: Program, trace: Trace) -> PassResult:
    """Cross-check one simulated trace against its program."""
    result = PassResult(name="trace")
    # Column reads only: verification never materializes TraceEvents.
    cid_col = trace.column("cid")
    start_col = trace.column("start")
    end_col = trace.column("end")
    layer_col = trace.column("layer")
    core_col = trace.column("core")
    by_cid: Dict[int, int] = {}
    for pos, cid in enumerate(cid_col):
        if cid in by_cid:
            result.emit(
                "RPR603",
                f"command #{cid} appears twice in the trace",
                layer=layer_col[pos],
                core=core_col[pos],
                cid=cid,
            )
        by_cid[cid] = pos

    for cmd in program.commands:
        if cmd.cid not in by_cid:
            result.emit(
                "RPR603",
                f"command #{cmd.cid} never executed",
                layer=cmd.layer,
                core=cmd.core,
                cid=cmd.cid,
                hint="the scheduler dropped a command; the makespan is "
                "meaningless",
            )
    if len(by_cid) > len(program.commands):
        extras = set(by_cid) - {c.cid for c in program.commands}
        for cid in sorted(extras):
            result.emit(
                "RPR603",
                f"trace event #{cid} does not correspond to any command",
                cid=cid,
            )

    # Dependencies: an event may start only after its deps completed.
    dep_checks = 0
    for cmd in program.commands:
        pos = by_cid.get(cmd.cid)
        if pos is None:
            continue
        start = start_col[pos]
        for dep in cmd.deps:
            dep_pos = by_cid.get(dep)
            if dep_pos is None:
                continue
            dep_checks += 1
            dep_end = end_col[dep_pos]
            if start < dep_end - _EPS:
                result.emit(
                    "RPR601",
                    f"command #{cmd.cid} started at {start:.1f} before "
                    f"dependency #{dep} finished at {dep_end:.1f}",
                    layer=cmd.layer,
                    core=cmd.core,
                    cid=cmd.cid,
                    hint="the scheduler dispatched a command whose "
                    "dependency count had not reached zero",
                )

    # Engine queues: serialized, in program order.
    queues: Dict[Tuple[int, Engine], List[int]] = {}
    for cmd in program.commands:
        pos = by_cid.get(cmd.cid)
        if pos is not None:
            queues.setdefault((cmd.core, cmd.engine), []).append(pos)
    for key, positions in queues.items():
        for prev, nxt in zip(positions, positions[1:]):
            if start_col[nxt] < end_col[prev] - _EPS:
                result.emit(
                    "RPR602",
                    f"commands #{cid_col[prev]} and #{cid_col[nxt]} overlap on "
                    f"core {key[0]} engine {key[1].value} "
                    f"([{start_col[prev]:.1f},{end_col[prev]:.1f}] vs "
                    f"[{start_col[nxt]:.1f},{end_col[nxt]:.1f}])",
                    layer=layer_col[nxt],
                    core=key[0],
                    cid=cid_col[nxt],
                    hint="hardware queues process one command at a time, "
                    "in program order",
                )

    result.stats["events"] = len(trace)
    result.stats["dependency_checks"] = dep_checks
    return result
