"""Functional semantics: reference executor and compiled-model oracle."""

from repro.runtime.functional import (
    FunctionalReport,
    LocalityViolation,
    ResultMismatch,
    run_compiled_functional,
)
from repro.runtime.reference import (
    apply_layer,
    run_reference,
    synth_input,
    synth_weights,
)

__all__ = [
    "FunctionalReport",
    "LocalityViolation",
    "ResultMismatch",
    "apply_layer",
    "run_compiled_functional",
    "run_reference",
    "synth_input",
    "synth_weights",
]
