"""Request-level serving simulator on top of the compiler + machine sim.

``repro.serve`` answers the question the per-program simulator cannot:
what happens when inference *requests* arrive over time and a scheduler
must decide which ones run when, on which cores.  See
:mod:`repro.serve.server` for the execution model.
"""

from repro.serve.continuous import serve_continuous, serve_degraded_continuous
from repro.serve.degraded import serve_degraded
from repro.serve.metrics import (
    AdmissionRecord,
    ContinuousStats,
    DegradedStats,
    ServeReport,
    ShedRecord,
    build_report,
    percentile,
)
from repro.serve.policies import (
    Assignment,
    DynamicPolicy,
    FifoPolicy,
    POLICY_NAMES,
    PolicyError,
    SchedulingPolicy,
    SjfPolicy,
    get_policy,
    validate_assignments,
)
from repro.serve.predictor import LatencyPredictor, resolve_graph
from repro.serve.request import (
    MixEntry,
    Request,
    RequestResult,
    generate_requests,
)
from repro.serve.server import serve, serve_policies

__all__ = [
    "AdmissionRecord",
    "Assignment",
    "ContinuousStats",
    "DegradedStats",
    "DynamicPolicy",
    "FifoPolicy",
    "LatencyPredictor",
    "MixEntry",
    "POLICY_NAMES",
    "PolicyError",
    "Request",
    "RequestResult",
    "SchedulingPolicy",
    "ServeReport",
    "ShedRecord",
    "SjfPolicy",
    "build_report",
    "generate_requests",
    "get_policy",
    "percentile",
    "resolve_graph",
    "serve",
    "serve_continuous",
    "serve_degraded",
    "serve_degraded_continuous",
    "serve_policies",
    "validate_assignments",
]
