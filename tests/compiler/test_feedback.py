"""Profile-guided rebalancing (Section 3.1.3 feedback loop)."""


import pytest

from repro.compiler import (
    CompileOptions,
    compile_model,
    measure_layer_imbalances,
    profile_guided_rebalance,
)
from repro.compiler.feedback import derive_weights
from repro.hw import CoreConfig, NPUConfig, tiny_test_machine
from repro.sim import simulate

from tests.conftest import make_chain_graph, make_mixed_graph


def lopsided_machine():
    """Two cores whose *actual* speed ratio defeats analytical balancing
    only if the balancer is misled -- here we mislead it via efficiency."""
    fast = CoreConfig(
        name="fast", macs_per_cycle=128, dma_bytes_per_cycle=8.0,
        spm_bytes=1 << 20, channel_alignment=4, spatial_alignment=1,
        compute_efficiency=1.0,
    )
    slow = CoreConfig(
        name="slow", macs_per_cycle=32, dma_bytes_per_cycle=8.0,
        spm_bytes=1 << 20, channel_alignment=4, spatial_alignment=1,
        compute_efficiency=1.0,
    )
    return NPUConfig(
        name="lop", cores=(fast, slow), bus_bytes_per_cycle=16.0,
        frequency_ghz=1.0, sync_base_cycles=100, sync_per_core_cycles=10,
    )


class TestMeasurement:
    def test_imbalances_cover_partitioned_layers(self):
        npu = tiny_test_machine(2)
        g = make_mixed_graph()
        compiled = compile_model(g, npu, CompileOptions.base())
        sim = simulate(compiled.program, npu)
        imbalances = measure_layer_imbalances(compiled, sim.trace)
        assert "c2" in imbalances
        assert len(imbalances["c2"].core_cycles) == 2
        assert all(c > 0 for c in imbalances["c2"].core_cycles)

    def test_ratio_of_balanced_layer_is_small(self):
        npu = tiny_test_machine(2)  # identical cores
        g = make_chain_graph()
        compiled = compile_model(g, npu, CompileOptions.base())
        sim = simulate(compiled.program, npu)
        imbalances = measure_layer_imbalances(compiled, sim.trace)
        assert imbalances["c2"].ratio < 1.5


class TestDeriveWeights:
    def test_no_overrides_when_balanced(self):
        npu = tiny_test_machine(2)
        g = make_chain_graph()
        compiled = compile_model(g, npu, CompileOptions.base())
        sim = simulate(compiled.program, npu)
        overrides = derive_weights(
            compiled, measure_layer_imbalances(compiled, sim.trace)
        )
        # identical cores, symmetric splits: nothing worth adjusting.
        assert len(overrides) <= 1

    def test_override_shapes(self):
        npu = lopsided_machine()
        g = make_chain_graph()
        compiled = compile_model(g, npu, CompileOptions.base())
        sim = simulate(compiled.program, npu)
        overrides = derive_weights(
            compiled, measure_layer_imbalances(compiled, sim.trace)
        )
        for name, weights in overrides.items():
            assert len(weights) == 2
            assert all(w > 0 for w in weights)


class TestRebalanceLoop:
    def test_never_regresses(self):
        npu = lopsided_machine()
        g = make_chain_graph()
        compiled, sim, report = profile_guided_rebalance(
            g, npu, CompileOptions.base(), max_iterations=3
        )
        assert report.final_latency_us <= report.initial_latency_us + 1e-9
        assert report.history[0] == pytest.approx(report.initial_latency_us)

    def test_report_fields(self):
        npu = tiny_test_machine(2)
        g = make_mixed_graph()
        compiled, sim, report = profile_guided_rebalance(g, npu)
        assert report.improvement >= 1.0
        assert report.iterations_run <= 3
        assert len(report.history) == report.iterations_run + 1 or report.history

    def test_result_still_functionally_exact(self):
        from repro.runtime import run_compiled_functional

        npu = lopsided_machine()
        g = make_mixed_graph()
        compiled, _, _ = profile_guided_rebalance(
            g, npu, CompileOptions.halo(), max_iterations=2
        )
        assert run_compiled_functional(compiled).max_abs_error == 0.0


class TestWeightOverridePlumbing:
    def test_partition_respects_override(self):
        from repro.partition import partition_graph

        npu = tiny_test_machine(2)
        g = make_chain_graph()
        skewed = partition_graph(
            g, npu, weight_overrides={"c2": (3.0, 1.0)}
        )
        part = skewed.partition("c2")
        assert (
            part.sub_layers[0].out_region.rows.length
            > part.sub_layers[1].out_region.rows.length
        )

    def test_bad_override_length_rejected(self):
        from repro.partition import partition_graph

        npu = tiny_test_machine(2)
        g = make_chain_graph()
        with pytest.raises(ValueError):
            partition_graph(g, npu, weight_overrides={"c2": (1.0, 1.0, 1.0)})
