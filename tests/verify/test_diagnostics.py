"""Diagnostics framework: records, pass results, report rendering."""

import json

from repro.verify import (
    Diagnostic,
    PassResult,
    Severity,
    VerifyReport,
    merge_reports,
)


class TestDiagnostic:
    def test_locus_and_str(self):
        d = Diagnostic(
            code="RPR101",
            severity=Severity.ERROR,
            message="race",
            layer="c1",
            core=2,
            cid=17,
            hint="add a barrier",
        )
        assert d.locus == "c1/core2/#17"
        s = str(d)
        assert "RPR101" in s and "error" in s and "hint: add a barrier" in s

    def test_partial_locus(self):
        d = Diagnostic(code="RPR310", severity=Severity.ERROR, message="x")
        assert d.locus == ""
        assert str(d).startswith("RPR310 error: x")

    def test_to_dict_round_trips_through_json(self):
        d = Diagnostic(
            code="RPR203", severity=Severity.WARNING, message="cycle", core=1
        )
        loaded = json.loads(json.dumps(d.to_dict()))
        assert loaded["code"] == "RPR203"
        assert loaded["severity"] == "warning"
        assert loaded["core"] == 1


class TestPassResult:
    def test_ok_ignores_warnings(self):
        p = PassResult(name="race")
        p.emit("RPR201", "forward dep", severity=Severity.WARNING)
        assert p.ok and not p.errors and len(p.diagnostics) == 1

    def test_errors_flip_ok(self):
        p = PassResult(name="race")
        p.emit("RPR101", "race")
        assert not p.ok and len(p.errors) == 1


class TestVerifyReport:
    def make_report(self):
        r = VerifyReport(model="m", config="Base", machine="tiny")
        clean = PassResult(name="structure", stats={"commands": 3})
        dirty = PassResult(name="race")
        dirty.emit("RPR101", "load races store", layer="c2", core=0)
        dirty.emit("RPR102", "store races store", layer="c3", core=1)
        r.passes.extend([clean, dirty, PassResult(name="spm", skipped=True)])
        return r

    def test_aggregation(self):
        r = self.make_report()
        assert not r.ok
        assert r.codes() == ["RPR101", "RPR102"]
        assert r.has_code("RPR101") and not r.has_code("RPR401")
        assert len(r.by_code("RPR102")) == 1

    def test_render_text(self):
        text = self.make_report().render_text(verbose=True)
        assert "2 error(s)" in text
        assert "commands=3" in text
        assert "skipped" in text
        assert "RPR101" in text

    def test_to_json(self):
        data = json.loads(self.make_report().to_json())
        assert data["ok"] is False
        names = [p["name"] for p in data["passes"]]
        assert names == ["structure", "race", "spm"]
        assert data["passes"][2]["skipped"] is True

    def test_merge_reports(self):
        dirty = self.make_report()
        clean = VerifyReport(model="m", config="Base", machine="tiny")
        assert merge_reports([clean])
        assert not merge_reports([clean, dirty])
