"""End-to-end serving runs: determinism, accounting, guard rails."""

from __future__ import annotations

import pytest

from repro.hw import exynos2100_like
from repro.serve import (
    LatencyPredictor,
    SchedulingPolicy,
    serve,
    serve_policies,
)

MIX = ["MobileNetV2", "InceptionV3"]
KW = dict(rps=2000.0, duration_us=5000.0, seed=0)


@pytest.fixture(scope="module")
def npu():
    return exynos2100_like()


@pytest.fixture(scope="module")
def predictor(npu):
    return LatencyPredictor(npu)


@pytest.fixture(scope="module")
def reports(npu, predictor):
    return {
        r.policy: r
        for r in serve_policies(MIX, npu, predictor=predictor, **KW)
    }


class TestDeterminism:
    def test_same_seed_identical_report(self, npu, predictor, reports):
        again = serve(MIX, npu, policy="dynamic", predictor=predictor, **KW)
        assert (
            again.to_dict(include_requests=True)
            == reports["dynamic"].to_dict(include_requests=True)
        )

    def test_workload_identical_across_policies(self, reports):
        streams = {
            policy: tuple(
                (r.request.rid, r.request.model, r.request.arrival_us)
                for r in rep.results
            )
            for policy, rep in reports.items()
        }
        assert streams["fifo"] == streams["sjf"] == streams["dynamic"]


class TestAccounting:
    def test_all_requests_served_once(self, reports):
        for rep in reports.values():
            assert rep.num_requests == len(rep.results) > 0
            assert [r.request.rid for r in rep.results] == list(
                range(rep.num_requests)
            )

    def test_time_ordering_per_request(self, reports):
        for rep in reports.values():
            for r in rep.results:
                assert r.start_us >= r.request.arrival_us
                assert r.finish_us > r.start_us
                assert r.total_us == pytest.approx(r.queue_us + r.exec_us)

    def test_makespan_is_last_finish(self, reports):
        for rep in reports.values():
            assert rep.makespan_us == pytest.approx(
                max(r.finish_us for r in rep.results)
            )

    def test_utilization_bounded(self, npu, reports):
        for rep in reports.values():
            assert len(rep.utilization) == npu.num_cores
            assert all(0.0 <= u <= 1.0 for u in rep.utilization)
            assert rep.mean_utilization > 0.1

    def test_dynamic_packs_waves(self, reports):
        # Under backlog the packer runs several requests per wave.
        assert reports["dynamic"].num_waves < reports["fifo"].num_waves
        assert reports["fifo"].num_waves == reports["fifo"].num_requests

    def test_dynamic_beats_fifo_makespan(self, reports):
        assert reports["dynamic"].makespan_us < reports["fifo"].makespan_us

    def test_slo_fields_populated(self, reports):
        for rep in reports.values():
            assert all(r.request.slo_us > 0 for r in rep.results)
            assert 0.0 <= rep.slo_miss_rate <= 1.0


class TestEdgeCases:
    def test_empty_workload(self, npu, predictor):
        # A window so short (with capped count) no request arrives.
        rep = serve(
            ["MobileNetV2"],
            npu,
            policy="fifo",
            rps=1.0,
            duration_us=1.0,
            seed=0,
            predictor=predictor,
        )
        assert rep.num_requests == 0
        assert rep.makespan_us == 0.0
        assert rep.throughput_rps == 0.0

    def test_rogue_policy_rejected(self, npu, predictor):
        class OverlappingPolicy(SchedulingPolicy):
            name = "rogue"

            def plan(self, queue, npu, predictor):
                return [
                    (queue[0], (0, 1)),
                    (queue[0], (1, 2)),
                ]

        with pytest.raises(RuntimeError):
            serve(
                ["MobileNetV2"],
                npu,
                policy=OverlappingPolicy(),
                rps=2000.0,
                duration_us=3000.0,
                seed=0,
                predictor=predictor,
            )

    def test_merged_programs_counted(self, reports):
        # fifo/sjf build one whole-machine program per model; dynamic
        # additionally builds packed multi-request programs.
        assert reports["fifo"].verified_programs == len(MIX)
        assert reports["dynamic"].verified_programs >= len(MIX)
