"""Serving-policy comparison on a backlogged mixed workload.

One seeded open-loop request stream (InceptionV3 + MobileNetV2 at a
rate the machine cannot absorb serially) is served under all three
scheduling policies; the headline claims are that

* dynamic core-group allocation finishes the backlog sooner than static
  whole-machine FIFO under gang scheduling, because parallel scaling
  across NPU cores is sublinear and packed narrow groups waste less of
  it; and
* continuous (backfill) admission strictly beats gang scheduling on
  both makespan and mean queueing delay for *every* policy and every
  pinned seed -- cores stop idling at wave barriers, so the same
  hardware absorbs the same backlog sooner.

Results land in ``BENCH_serving.json`` at the repo root (and a text
copy under ``benchmarks/out/``): the top-level keys are the
gang-scheduled summary (unchanged schema), and the ``"continuous"``
key holds the per-seed gang-vs-continuous comparison.  Run standalone
with ``python benchmarks/bench_serving.py`` or through pytest with
``pytest benchmarks/bench_serving.py --benchmark-only -s``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Tuple

from repro.analysis.serving import render_serving_table, serving_summary
from repro.hw import exynos2100_like
from repro.serve import LatencyPredictor, ServeReport, serve_policies

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serving.json"

MIX = ["InceptionV3", "MobileNetV2"]
RPS = 3000.0
DURATION_US = 8000.0
SEED = 0
#: seeds of the gang-vs-continuous comparison (SEED must be first).
SEEDS = (0, 1, 2)


def collect(npu) -> List[ServeReport]:
    return serve_policies(
        MIX, npu, rps=RPS, duration_us=DURATION_US, seed=SEED
    )


def collect_modes(npu, seed: int) -> Tuple[List[ServeReport], List[ServeReport]]:
    """Gang and continuous reports for one seed, sharing one predictor."""
    predictor = LatencyPredictor(npu, None, seed=seed)
    common = dict(rps=RPS, duration_us=DURATION_US, seed=seed, predictor=predictor)
    gang = serve_policies(MIX, npu, **common)
    cont = serve_policies(MIX, npu, mode="continuous", **common)
    return gang, cont


def build_summary(npu) -> Tuple[Dict, Dict[int, Tuple[List[ServeReport], List[ServeReport]]]]:
    """The full benchmark summary plus every seed's (gang, continuous) pair."""
    per_seed: Dict[str, Dict] = {}
    pairs: Dict[int, Tuple[List[ServeReport], List[ServeReport]]] = {}
    for seed in SEEDS:
        gang, cont = collect_modes(npu, seed)
        pairs[seed] = (gang, cont)
        per_seed[str(seed)] = serving_summary(gang + cont)["continuous"]
    summary = serving_summary(pairs[SEED][0])
    summary["continuous"] = per_seed
    return summary, pairs


def _assert_continuous_dominates(
    gang: List[ServeReport], cont: List[ServeReport]
) -> None:
    gang_by = {r.policy: r for r in gang}
    for r in cont:
        g = gang_by[r.policy]
        assert r.makespan_us < g.makespan_us, (r.policy, r.seed)
        assert r.mean_queue_us < g.mean_queue_us, (r.policy, r.seed)
        assert r.continuous is not None
        assert r.continuous.policy_stall_us == 0.0, (r.policy, r.seed)


def _write(summary: Dict) -> None:
    RESULT_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")


def _render(summary: Dict, gang0: List[ServeReport], cont0: List[ServeReport]) -> str:
    lines = [render_serving_table(gang0 + cont0), ""]
    lines.append(
        "dynamic vs fifo makespan (gang): "
        f"{summary['dynamic_vs_fifo_makespan']:.2f}x"
    )
    lines.append(f"sjf vs fifo p50 (gang): {summary['sjf_vs_fifo_p50']:.2f}x")
    for seed in SEEDS:
        vs = summary["continuous"][str(seed)]["vs_gang"]
        lines.append(
            f"continuous vs gang makespan, seed {seed}: "
            + "  ".join(
                f"{p}={vs[p]['makespan_speedup']:.2f}x" for p in sorted(vs)
            )
        )
    return "\n".join(lines)


def test_serving(benchmark, npu, out_dir):
    """Serves the workload under all policies and both admission modes;
    asserts the acceptance criteria (dynamic beats static FIFO on gang
    makespan; continuous beats gang on makespan and queueing delay for
    every policy and seed)."""
    summary, pairs = benchmark.pedantic(
        lambda: build_summary(npu), rounds=1, iterations=1
    )
    gang0, cont0 = pairs[SEED]
    by_policy = {r.policy: r for r in gang0}
    benchmark.extra_info["num_requests"] = by_policy["fifo"].num_requests
    for r in gang0 + cont0:
        key = f"{r.policy}_{r.mode}"
        benchmark.extra_info[f"{key}_makespan_us"] = round(r.makespan_us, 1)
        benchmark.extra_info[f"{key}_p99_us"] = round(r.p99_us, 1)
    _write(summary)

    from benchmarks.conftest import emit

    emit(out_dir, "serving.txt", _render(summary, gang0, cont0))
    assert by_policy["fifo"].num_requests > 0
    assert by_policy["dynamic"].makespan_us < by_policy["fifo"].makespan_us
    for seed in SEEDS:
        _assert_continuous_dominates(*pairs[seed])


def main() -> int:
    npu = exynos2100_like()
    summary, pairs = build_summary(npu)
    gang0, cont0 = pairs[SEED]
    _write(summary)
    print(_render(summary, gang0, cont0))
    print(f"\nwritten to {RESULT_PATH}")
    by_policy = {r.policy: r for r in gang0}
    ok = by_policy["dynamic"].makespan_us < by_policy["fifo"].makespan_us
    for seed in SEEDS:
        try:
            _assert_continuous_dominates(*pairs[seed])
        except AssertionError as exc:
            print(f"continuous did not dominate gang: {exc}")
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
