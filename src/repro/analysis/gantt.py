"""Textual Gantt rendering of execution traces (the Figure 12 view).

Renders one row per (core, engine), time flowing left to right, with a
character per time bucket indicating what the engine was doing.  This is
how the repository visualizes the halo-first pipelining profiles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.compiler.program import CommandKind, Engine
from repro.sim.trace import Trace

#: glyph per command kind.
_GLYPH = {
    CommandKind.LOAD_INPUT: "L",
    CommandKind.LOAD_WEIGHT: "w",
    CommandKind.COMPUTE: "#",
    CommandKind.STORE_OUTPUT: "S",
    CommandKind.HALO_SEND: "h",
    CommandKind.HALO_RECV: "H",
    CommandKind.BARRIER: "|",
}

_ROW_ORDER = (Engine.LOAD, Engine.COMPUTE, Engine.STORE, Engine.CTRL)


def render_gantt(
    trace: Trace,
    num_cores: int,
    width: int = 100,
    layers: Optional[Iterable[str]] = None,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> str:
    """Render the trace as an ASCII Gantt chart.

    ``layers`` restricts the view to specific layers (the window is then
    clamped to their span, like Figure 12's two-layer excerpt).
    """
    events = trace.events if layers is None else trace.for_layers(layers)
    if not events:
        return "(empty trace)"
    lo = min(e.start for e in events) if t0 is None else t0
    hi = max(e.end for e in events) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    scale = width / (hi - lo)

    lines: List[str] = [
        f"time [{lo:,.0f} .. {hi:,.0f}] cycles, '{_legend()}'"
    ]
    for core in range(num_cores):
        for engine in _ROW_ORDER:
            row_events = [
                e for e in events if e.core == core and e.engine is engine
            ]
            if not row_events and engine is Engine.CTRL:
                continue
            buf = [" "] * width
            for e in row_events:
                a = max(0, int((e.start - lo) * scale))
                b = min(width, max(a + 1, int((e.end - lo) * scale)))
                glyph = _GLYPH.get(e.kind, "?")
                for i in range(a, b):
                    buf[i] = glyph
            lines.append(f"core{core} {engine.value:7s} [{''.join(buf)}]")
        lines.append("")
    return "\n".join(lines).rstrip()


def _legend() -> str:
    return "L=load w=kernel #=compute S=store h=halo-send H=halo-recv |=sync"


def exposed_waits(
    trace: Trace, layers: Optional[Iterable[str]] = None
) -> Dict[CommandKind, float]:
    """Total remote-wait cycles by command kind (Figure 12's idle arrows)."""
    events = trace.events if layers is None else trace.for_layers(layers)
    waits: Dict[CommandKind, float] = {}
    for e in events:
        if e.remote_wait > 0:
            waits[e.kind] = waits.get(e.kind, 0.0) + e.remote_wait
    return waits
