"""Admission policies: which queued requests run next, on which cores.

A policy turns the request queue into a *wave*: a set of requests that
start together on disjoint core groups.  Three policies ship:

* ``fifo`` -- strict arrival order, one request at a time on the whole
  machine (the static baseline);
* ``sjf`` -- shortest job first by the program cache's predicted
  latency, still whole-machine (reorders the queue, same packing);
* ``dynamic`` -- packs queued requests onto disjoint core groups sized
  by predicted work, choosing the wave width whose *measured* merged
  latency serves the most requests per microsecond (parallel scaling
  across cores is sublinear, so under backlog narrower groups serve the
  queue faster -- unless bus contention eats the win, which the
  measurement catches).

Every policy plans over an explicit *available core set* (``cores``),
which defaults to the whole machine.  Degraded-mode serving
(:mod:`repro.serve.degraded`) passes the surviving cores instead, so a
policy transparently recompiles and repacks onto whatever the fault
injector left alive -- the recompile itself is absorbed by the
fingerprint-keyed program cache, which already keys by core group.

Continuous-mode serving (:mod:`repro.serve.continuous`) calls
:meth:`SchedulingPolicy.admit` instead of :meth:`~SchedulingPolicy.plan`
whenever a core group frees up: the policy sees only the *free* cores
and decides, incrementally, what to start on them right now.  The base
implementation delegates to ``plan`` over the free set, so any custom
wave policy works in continuous mode unchanged; fifo and sjf override
it to split the free cores across multiple queued requests (keeping
their ordering discipline) because under backlog several narrow groups
serve a queue faster than one wide one on sublinearly-scaling cores.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.hw.config import NPUConfig
from repro.serve.predictor import LatencyPredictor
from repro.serve.request import Request

#: one wave: (request, core group) pairs on pairwise-disjoint groups.
Assignment = List[Tuple[Request, Tuple[int, ...]]]


class PolicyError(RuntimeError):
    """A scheduling policy returned an invalid or impossible plan."""


def _even_split(
    ordered: Sequence[Request], free_cores: Tuple[int, ...]
) -> Assignment:
    """Split ``free_cores`` into contiguous runs over the first requests.

    The first ``min(len(ordered), len(free_cores))`` requests each get a
    contiguous slice of the free-core list; leftover cores go to the
    earlier (higher-priority) requests, one extra each.
    """
    k = min(len(ordered), len(free_cores))
    base, extra = divmod(len(free_cores), k)
    out: Assignment = []
    i = 0
    for j in range(k):
        size = base + (1 if j < extra else 0)
        out.append((ordered[j], tuple(free_cores[i:i + size])))
        i += size
    return out


class SchedulingPolicy:
    """Base class; subclasses override :meth:`plan` (and optionally
    :meth:`admit` for continuous-mode backfill behavior)."""

    name = "?"

    def plan(
        self,
        queue: Sequence[Request],
        npu: NPUConfig,
        predictor: LatencyPredictor,
        cores: Optional[Tuple[int, ...]] = None,
    ) -> Assignment:
        """Pick the next wave from ``queue`` (non-empty, arrival order).

        ``cores`` is the available core set (default: every core of the
        machine); assignments must stay within it.  Returns at least one
        assignment; the server removes the chosen requests from its
        queue.
        """
        raise NotImplementedError

    def admit(
        self,
        queue: Sequence[Request],
        npu: NPUConfig,
        predictor: LatencyPredictor,
        free_cores: Tuple[int, ...],
    ) -> Assignment:
        """Incremental admission onto the currently-free cores.

        Called by the continuous server whenever ``free_cores`` (sorted,
        non-empty) sit idle and ``queue`` is non-empty; other core
        groups may still be running.  Returns assignments confined to
        ``free_cores`` (an empty list declines to admit -- the engine
        records that as policy stall time).  The default delegates to
        :meth:`plan` over the free set, which keeps custom wave policies
        working in continuous mode without changes.
        """
        return self.plan(queue, npu, predictor, cores=free_cores)


class FifoPolicy(SchedulingPolicy):
    """First come, first served; every request gets all available cores."""

    name = "fifo"

    def plan(
        self,
        queue: Sequence[Request],
        npu: NPUConfig,
        predictor: LatencyPredictor,
        cores: Optional[Tuple[int, ...]] = None,
    ) -> Assignment:
        return [(queue[0], cores or predictor.all_cores)]

    def admit(
        self,
        queue: Sequence[Request],
        npu: NPUConfig,
        predictor: LatencyPredictor,
        free_cores: Tuple[int, ...],
    ) -> Assignment:
        """Backfill in arrival order, splitting the free cores evenly."""
        return _even_split(queue, free_cores)


class SjfPolicy(SchedulingPolicy):
    """Shortest predicted job first; every request gets all available cores.

    Prediction comes from the program cache's isolated simulation, so
    ranking N queued requests costs one simulation per *distinct* model,
    not per request.  Ties break by arrival order.
    """

    name = "sjf"

    def plan(
        self,
        queue: Sequence[Request],
        npu: NPUConfig,
        predictor: LatencyPredictor,
        cores: Optional[Tuple[int, ...]] = None,
    ) -> Assignment:
        cores = cores or predictor.all_cores
        best = min(
            queue,
            key=lambda r: (predictor.predicted_latency_us(r.model, cores), r.rid),
        )
        return [(best, cores)]

    def admit(
        self,
        queue: Sequence[Request],
        npu: NPUConfig,
        predictor: LatencyPredictor,
        free_cores: Tuple[int, ...],
    ) -> Assignment:
        """Backfill shortest-first, splitting the free cores evenly.

        Ordering uses the whole-machine predicted latency as the work
        proxy (one cached simulation per distinct model, the same proxy
        :meth:`DynamicPolicy._pack` uses), so the ranking is stable no
        matter which cores happen to be free.
        """
        ordered = sorted(
            queue,
            key=lambda r: (predictor.predicted_latency_us(r.model), r.rid),
        )
        return _even_split(ordered, free_cores)


class DynamicPolicy(SchedulingPolicy):
    """Dynamic core-group allocation: pack concurrent requests.

    For every candidate width ``w`` up to ``min(len(queue), len(cores),
    max_width)``, the oldest ``w`` requests get contiguous disjoint core
    groups sized longest-processing-time first (every request one core,
    each spare core to the request with the most remaining per-core
    work), and the candidate wave's latency is *measured* by simulating
    its merged program (memoized per wave shape in the predictor -- this
    is what prices cross-group bus contention, which isolated estimates
    miss).  The width that maximizes requests served per microsecond
    wins; ties go to the narrower wave.

    With a reduced ``cores`` set (degraded mode) the groups are
    contiguous runs of the *surviving* core list, so e.g. losing core 1
    of three leaves the packable groups ``(0,)``, ``(2,)``, ``(0, 2)``.
    """

    name = "dynamic"

    def __init__(self, max_width: int = 0) -> None:
        if max_width < 0:
            raise ValueError("max_width must be >= 0")
        self.max_width = max_width

    def plan(
        self,
        queue: Sequence[Request],
        npu: NPUConfig,
        predictor: LatencyPredictor,
        cores: Optional[Tuple[int, ...]] = None,
    ) -> Assignment:
        cores = cores or predictor.all_cores
        width_cap = min(len(queue), len(cores))
        if self.max_width:
            width_cap = min(width_cap, self.max_width)
        best_throughput = 0.0
        best: Assignment = []
        for width in range(1, width_cap + 1):
            picked = list(queue[:width])
            groups = self._pack(picked, cores, predictor, width)
            pattern = tuple(
                (r.model, g) for r, g in zip(picked, groups)
            )
            # Static pre-screen: the analytic lower bound caps a wave's
            # achievable throughput at width / lb.  When even that loses
            # to (or only ties) the incumbent, the measured wave cannot
            # win -- the winner update below is strictly ``>`` -- so the
            # simulation is skipped without changing any decision.
            lb_us = predictor.wave_bound_us(pattern)[0]
            if lb_us > 0.0 and width / lb_us <= best_throughput:
                continue
            wave_us = predictor.wave_latency_us(pattern)
            throughput = width / wave_us
            if throughput > best_throughput:
                best_throughput = throughput
                best = list(zip(picked, groups))
        return best

    @staticmethod
    def _pack(
        picked: Sequence[Request],
        cores: Tuple[int, ...],
        predictor: LatencyPredictor,
        width: int,
    ) -> List[Tuple[int, ...]]:
        """Contiguous disjoint groups covering the available cores, LPT.

        Work proxy: the whole-machine predicted latency (one cached
        simulation per distinct model).
        """
        work = [predictor.predicted_latency_us(r.model) for r in picked]
        sizes = [1] * width
        for _ in range(len(cores) - width):
            # deterministic argmax of remaining per-core work.
            i = max(
                range(width),
                key=lambda j: (work[j] / sizes[j], -j),
            )
            sizes[i] += 1
        groups: List[Tuple[int, ...]] = []
        next_core = 0
        for size in sizes:
            groups.append(tuple(cores[next_core:next_core + size]))
            next_core += size
        return groups


_POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    p.name: p for p in (FifoPolicy, SjfPolicy, DynamicPolicy)
}

#: registered policy names, in presentation order.
POLICY_NAMES: Tuple[str, ...] = ("fifo", "sjf", "dynamic")


def get_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by registry name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; one of {sorted(_POLICIES)}"
        ) from None


def validate_assignments(
    policy: SchedulingPolicy,
    assignments: Sequence[Tuple[Request, Tuple[int, ...]]],
    queue: Sequence[Request],
    npu: NPUConfig,
    allowed_cores: Optional[Tuple[int, ...]] = None,
    allow_empty: bool = False,
) -> None:
    """Guard rails for (possibly user-supplied) policies.

    An empty plan over a non-empty queue is rejected by name -- the
    serving loops would otherwise spin forever on a policy that never
    schedules anything.  Continuous-mode admission passes
    ``allow_empty=True`` (declining to backfill is legal there, the
    engine accounts it as policy stall time) and ``allowed_cores`` (the
    free set admissions must stay within).
    """
    if not assignments:
        if allow_empty:
            return
        raise PolicyError(
            f"policy {policy.name!r} returned an empty wave for a "
            f"non-empty queue ({len(queue)} request(s) waiting)"
        )
    queued = {r.rid for r in queue}
    allowed = set(allowed_cores) if allowed_cores is not None else None
    used: set = set()
    scheduled: set = set()
    for request, cores in assignments:
        if request.rid not in queued:
            raise PolicyError(
                f"policy {policy.name!r} scheduled request {request.rid}, "
                "which is not queued"
            )
        if request.rid in scheduled:
            raise PolicyError(
                f"policy {policy.name!r} scheduled request {request.rid} twice"
            )
        scheduled.add(request.rid)
        if not cores:
            raise PolicyError(
                f"policy {policy.name!r}: request {request.rid} got an "
                "empty core group"
            )
        for c in cores:
            if not 0 <= c < npu.num_cores:
                raise PolicyError(
                    f"policy {policy.name!r}: request {request.rid} uses "
                    f"core {c}, out of range"
                )
            if allowed is not None and c not in allowed:
                raise PolicyError(
                    f"policy {policy.name!r}: request {request.rid} uses "
                    f"core {c}, which is not free"
                )
            if c in used:
                raise PolicyError(
                    f"policy {policy.name!r}: core {c} assigned to two "
                    "requests at once"
                )
            used.add(c)
