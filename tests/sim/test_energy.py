"""Energy model over simulated traces."""

import pytest

from repro.compiler import CompileOptions, compile_model
from repro.hw import tiny_test_machine
from repro.sim import (
    EnergyModel,
    compare_energy,
    estimate_energy,
    simulate,
)
from repro.sim.trace import Trace

from tests.conftest import make_chain_graph, make_mixed_graph


def run(graph, npu, opts):
    compiled = compile_model(graph, npu, opts)
    return simulate(compiled.program, npu)


class TestModelValidation:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyModel(pj_per_mac=-1.0)

    def test_defaults_order_of_magnitude(self):
        m = EnergyModel()
        # DRAM must dominate SPM by far (the premise of forwarding).
        assert m.pj_per_dram_byte > 10 * m.pj_per_spm_byte


class TestEstimate:
    def test_empty_trace_zero(self):
        npu = tiny_test_machine(1)
        report = estimate_energy(Trace([]), npu)
        assert report.total_uj == 0.0
        assert report.average_power_mw == 0.0

    def test_components_positive(self):
        npu = tiny_test_machine(2)
        sim = run(make_mixed_graph(), npu, CompileOptions.base())
        report = estimate_energy(sim.trace, npu)
        assert report.compute_uj > 0
        assert report.dram_uj > 0
        assert report.spm_uj > 0
        assert report.static_uj > 0
        assert report.total_uj == pytest.approx(sum(report.breakdown().values()))

    def test_compute_energy_is_config_invariant(self):
        """MACs don't change between Base and +Halo, so neither does
        compute energy (stratum may add redundant MACs)."""
        npu = tiny_test_machine(2)
        g = make_chain_graph()
        a = estimate_energy(run(g, npu, CompileOptions.base()).trace, npu)
        b = estimate_energy(run(g, npu, CompileOptions.halo()).trace, npu)
        assert a.compute_uj == pytest.approx(b.compute_uj)

    def test_forwarding_saves_dram_energy(self):
        npu = tiny_test_machine(2)
        g = make_chain_graph()
        base = estimate_energy(run(g, npu, CompileOptions.base()).trace, npu)
        halo = estimate_energy(run(g, npu, CompileOptions.halo()).trace, npu)
        assert halo.dram_uj < base.dram_uj

    def test_sync_energy_counts_barriers(self):
        npu = tiny_test_machine(2)
        g = make_mixed_graph()
        base = estimate_energy(run(g, npu, CompileOptions.base()).trace, npu)
        solo_npu = tiny_test_machine(1)
        solo = estimate_energy(
            run(g, solo_npu, CompileOptions.single_core()).trace, solo_npu
        )
        assert base.sync_uj > 0
        assert solo.sync_uj == 0.0

    def test_custom_model_scales(self):
        npu = tiny_test_machine(2)
        sim = run(make_chain_graph(), npu, CompileOptions.base())
        cheap = estimate_energy(sim.trace, npu, EnergyModel(pj_per_dram_byte=1.0))
        costly = estimate_energy(sim.trace, npu, EnergyModel(pj_per_dram_byte=100.0))
        assert costly.dram_uj == pytest.approx(100 * cheap.dram_uj)

    def test_average_power(self):
        npu = tiny_test_machine(2)
        sim = run(make_chain_graph(), npu, CompileOptions.base())
        report = estimate_energy(sim.trace, npu)
        assert report.average_power_mw == pytest.approx(
            report.total_uj / report.latency_us * 1000.0
        )


class TestCompare:
    def test_best_selection(self):
        npu = tiny_test_machine(2)
        g = make_chain_graph()
        reports = {
            "Base": estimate_energy(run(g, npu, CompileOptions.base()).trace, npu),
            "+Halo": estimate_energy(run(g, npu, CompileOptions.halo()).trace, npu),
        }
        best, totals = compare_energy(reports)
        assert best in reports
        assert totals[best] == min(totals.values())
