"""End-to-end serving runs: determinism, accounting, guard rails."""

from __future__ import annotations

import pytest

from repro.hw import exynos2100_like
from repro.serve import (
    LatencyPredictor,
    SchedulingPolicy,
    serve,
    serve_policies,
)

MIX = ["MobileNetV2", "InceptionV3"]
KW = dict(rps=2000.0, duration_us=5000.0, seed=0)


@pytest.fixture(scope="module")
def npu():
    return exynos2100_like()


@pytest.fixture(scope="module")
def predictor(npu):
    return LatencyPredictor(npu)


@pytest.fixture(scope="module")
def reports(npu, predictor):
    return {
        r.policy: r
        for r in serve_policies(MIX, npu, predictor=predictor, **KW)
    }


class TestDeterminism:
    def test_same_seed_identical_report(self, npu, predictor, reports):
        again = serve(MIX, npu, policy="dynamic", predictor=predictor, **KW)
        assert (
            again.to_dict(include_requests=True)
            == reports["dynamic"].to_dict(include_requests=True)
        )

    def test_workload_identical_across_policies(self, reports):
        streams = {
            policy: tuple(
                (r.request.rid, r.request.model, r.request.arrival_us)
                for r in rep.results
            )
            for policy, rep in reports.items()
        }
        assert streams["fifo"] == streams["sjf"] == streams["dynamic"]


class TestAccounting:
    def test_all_requests_served_once(self, reports):
        for rep in reports.values():
            assert rep.num_requests == len(rep.results) > 0
            assert [r.request.rid for r in rep.results] == list(
                range(rep.num_requests)
            )

    def test_time_ordering_per_request(self, reports):
        for rep in reports.values():
            for r in rep.results:
                assert r.start_us >= r.request.arrival_us
                assert r.finish_us > r.start_us
                assert r.total_us == pytest.approx(r.queue_us + r.exec_us)

    def test_makespan_is_last_finish(self, reports):
        for rep in reports.values():
            assert rep.makespan_us == pytest.approx(
                max(r.finish_us for r in rep.results)
            )

    def test_utilization_bounded(self, npu, reports):
        for rep in reports.values():
            assert len(rep.utilization) == npu.num_cores
            assert all(0.0 <= u <= 1.0 for u in rep.utilization)
            assert rep.mean_utilization > 0.1

    def test_dynamic_packs_waves(self, reports):
        # Under backlog the packer runs several requests per wave.
        assert reports["dynamic"].num_waves < reports["fifo"].num_waves
        assert reports["fifo"].num_waves == reports["fifo"].num_requests

    def test_dynamic_beats_fifo_makespan(self, reports):
        assert reports["dynamic"].makespan_us < reports["fifo"].makespan_us

    def test_slo_fields_populated(self, reports):
        for rep in reports.values():
            assert all(r.request.slo_us > 0 for r in rep.results)
            assert 0.0 <= rep.slo_miss_rate <= 1.0


class TestEdgeCases:
    def test_empty_workload(self, npu, predictor):
        # A window so short (with capped count) no request arrives.
        rep = serve(
            ["MobileNetV2"],
            npu,
            policy="fifo",
            rps=1.0,
            duration_us=1.0,
            seed=0,
            predictor=predictor,
        )
        assert rep.num_requests == 0
        assert rep.makespan_us == 0.0
        assert rep.throughput_rps == 0.0

    def test_rogue_policy_rejected(self, npu, predictor):
        class OverlappingPolicy(SchedulingPolicy):
            name = "rogue"

            def plan(self, queue, npu, predictor):
                return [
                    (queue[0], (0, 1)),
                    (queue[0], (1, 2)),
                ]

        with pytest.raises(RuntimeError):
            serve(
                ["MobileNetV2"],
                npu,
                policy=OverlappingPolicy(),
                rps=2000.0,
                duration_us=3000.0,
                seed=0,
                predictor=predictor,
            )

    def test_merged_programs_counted(self, reports):
        # fifo/sjf build one whole-machine program per model; dynamic
        # additionally builds packed multi-request programs.
        assert reports["fifo"].verified_programs == len(MIX)
        assert reports["dynamic"].verified_programs >= len(MIX)


class TestSloDerivation:
    """The one shared SLO helper every serving loop now uses.

    Four copy-pasted ``slo_of`` lambdas (gang, continuous x2, degraded)
    used to define "SLO = scale x isolated latency" independently; this
    pins the hoisted :meth:`LatencyPredictor.slo_of` so a drift in any
    loop shows up as a failure here.
    """

    def test_slo_is_scale_times_isolated_latency(self, npu, predictor):
        slo = predictor.slo_of(5.0)
        assert slo is not None
        for model in MIX:
            assert slo(model) == pytest.approx(
                5.0 * predictor.predicted_latency_us(model)
            )

    def test_nonpositive_scale_disables_slos(self, predictor):
        assert predictor.slo_of(0.0) is None
        assert predictor.slo_of(-1.0) is None

    def test_serve_attaches_derived_slos(self, npu, predictor, reports):
        # Every request in the canonical report set carries exactly the
        # derived SLO for its model -- the serving loops all route
        # through the same helper.
        slo = predictor.slo_of(5.0)
        for rep in reports.values():
            assert rep.results
            for r in rep.results:
                assert r.request.slo_us == pytest.approx(slo(r.request.model))

    def test_slo_scale_zero_leaves_requests_unbounded(self, npu, predictor):
        rep = serve(
            MIX, npu, policy="fifo", predictor=predictor, slo_scale=0.0, **KW
        )
        assert rep.results
        assert all(r.request.slo_us == 0.0 for r in rep.results)
        assert rep.slo_miss_rate == 0.0
