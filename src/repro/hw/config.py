"""Machine descriptions for multicore mobile NPUs.

The model follows Figure 1 of the paper: each core owns a compute engine
(an adder-tree inner-product array) and a private scratch-pad memory (SPM);
all cores reach global memory through a shared bus.  There is no direct
core-to-core link -- halo exchange travels through global memory
(Section 4.2, Figure 12 discussion).

Everything is expressed in cycles and bytes-per-cycle; ``frequency_ghz``
converts simulated cycles into microseconds for reporting.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple


@dataclasses.dataclass(frozen=True)
class CoreConfig:
    """One NPU core.

    Attributes:
        name: human-readable identifier.
        macs_per_cycle: peak multiply-accumulates per cycle of the
            adder-tree engine.
        dma_bytes_per_cycle: bandwidth of the core's DMA link to the bus;
            the effective transfer rate is additionally capped by the bus.
        spm_bytes: size of the core's scratch-pad (local) memory.
        channel_alignment: the adder tree consumes channels in fixed-size
            groups; tensor slices along channels are padded up to this.
            Channel alignment is the larger constraint (Section 4.1 /
            Table 4 discussion).
        spatial_alignment: row-granularity constraint for spatial slices.
        compute_efficiency: sustained fraction of peak MACs actually
            achieved on convolutions (utilization of the MAC array).
        dvfs_steps: the discrete frequency multipliers the core can run
            at under thermal pressure, descending from 1.0 (full speed).
            Used by the fault-injection layer (:mod:`repro.faults`);
            fault-free simulation always runs at ``dvfs_steps[0]``.
        heat_per_busy_cycle: heat units accumulated per busy compute
            cycle (arbitrary units; only ratios to the threshold matter).
        cool_per_cycle: heat units dissipated per wall-clock cycle.
        throttle_threshold: heat level at which the core steps down to
            the next DVFS step; each further multiple steps down again.
    """

    name: str
    macs_per_cycle: int
    dma_bytes_per_cycle: float
    spm_bytes: int
    channel_alignment: int = 16
    spatial_alignment: int = 2
    compute_efficiency: float = 0.75
    dvfs_steps: Tuple[float, ...] = (1.0, 0.8, 0.6)
    heat_per_busy_cycle: float = 1.0
    cool_per_cycle: float = 0.4
    throttle_threshold: float = 150_000.0

    def __post_init__(self) -> None:
        if self.macs_per_cycle <= 0:
            raise ValueError("macs_per_cycle must be positive")
        if self.dma_bytes_per_cycle <= 0:
            raise ValueError("dma_bytes_per_cycle must be positive")
        if self.spm_bytes <= 0:
            raise ValueError("spm_bytes must be positive")
        if self.channel_alignment <= 0 or self.spatial_alignment <= 0:
            raise ValueError("alignments must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not self.dvfs_steps or self.dvfs_steps[0] != 1.0:
            raise ValueError("dvfs_steps must start at 1.0 (full speed)")
        if any(not 0 < s <= 1 for s in self.dvfs_steps):
            raise ValueError("dvfs_steps must lie in (0, 1]")
        if list(self.dvfs_steps) != sorted(self.dvfs_steps, reverse=True):
            raise ValueError("dvfs_steps must be non-increasing")
        if self.heat_per_busy_cycle < 0 or self.cool_per_cycle < 0:
            raise ValueError("thermal rates must be non-negative")
        if self.throttle_threshold <= 0:
            raise ValueError("throttle_threshold must be positive")

    @property
    def effective_macs_per_cycle(self) -> float:
        return self.macs_per_cycle * self.compute_efficiency

    def dvfs_level_for_heat(self, heat: float) -> int:
        """The DVFS step index a core at ``heat`` units runs at."""
        if heat <= 0:
            return 0
        return min(len(self.dvfs_steps) - 1, int(heat / self.throttle_threshold))


@dataclasses.dataclass(frozen=True)
class NPUConfig:
    """A multicore NPU subsystem plus its path to global memory.

    Attributes:
        cores: per-core configurations (may be heterogeneous).
        bus_bytes_per_cycle: total bandwidth of the shared bus to global
            memory; concurrent DMA transfers share it.
        frequency_ghz: NPU clock, used only to convert cycles to wall time.
        sync_base_cycles: fixed cost of one inter-core synchronization
            (driver/firmware round trip), paid on top of the implicit wait
            for the slowest core.
        sync_per_core_cycles: additional barrier cost per participating core.
        halo_exchange_base_cycles: fixed setup cost of one halo-exchange
            rendezvous; the data movement itself is billed over the bus.
        dram_latency_cycles: first-byte latency of a DMA transfer.
        sync_jitter_cycles: upper bound of the uniform service-time jitter
            of one barrier (host driver / firmware variance; the paper
            reports sigma of ~9us on silicon, Table 5).  Each barrier
            participant draws independently, so the exposed cost is the
            maximum across cores.
        halo_jitter_cycles: jitter bound for halo-exchange rendezvous
            (the "implicit synchronization" of Section 3.2).  Strata incur
            neither kind of jitter -- their layers never coordinate.
    """

    name: str
    cores: Tuple[CoreConfig, ...]
    bus_bytes_per_cycle: float
    frequency_ghz: float = 1.2
    sync_base_cycles: int = 4000
    sync_per_core_cycles: int = 500
    halo_exchange_base_cycles: int = 800
    dram_latency_cycles: int = 100
    sync_jitter_cycles: int = 0
    halo_jitter_cycles: int = 0

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValueError("NPU needs at least one core")
        if self.bus_bytes_per_cycle <= 0:
            raise ValueError("bus bandwidth must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def core(self, index: int) -> CoreConfig:
        return self.cores[index]

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / (self.frequency_ghz * 1000.0)

    def us_to_cycles(self, us: float) -> float:
        return us * self.frequency_ghz * 1000.0

    def sync_cost_cycles(self, num_participants: int = 0) -> float:
        """Expected barrier overhead for a sync among ``num_participants``.

        Includes the expected exposed jitter: with ``n`` independent
        uniform draws the maximum is ``J * n / (n + 1)``.
        """
        n = num_participants or self.num_cores
        expected_jitter = self.sync_jitter_cycles * n / (n + 1)
        return self.sync_base_cycles + self.sync_per_core_cycles * n + expected_jitter

    def single_core(self, index: int = 0) -> "NPUConfig":
        """A one-core variant of this machine (the paper's 1-core baseline)."""
        return dataclasses.replace(
            self, name=f"{self.name}-1core", cores=(self.cores[index],)
        )

    def compute_weights(self) -> Tuple[float, ...]:
        """Relative sustained compute throughput per core (balancer input)."""
        return tuple(c.effective_macs_per_cycle for c in self.cores)
