"""Interval/Region algebra and interval splitting."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.dtypes import DataType
from repro.ir.tensor import (
    Interval,
    Region,
    TensorShape,
    split_interval_even,
    split_interval_weighted,
)


class TestTensorShape:
    def test_num_elements(self):
        assert TensorShape(2, 3, 4).num_elements == 24

    def test_size_bytes_scales_with_dtype(self):
        s = TensorShape(4, 4, 4)
        assert s.size_bytes(DataType.INT8) == 64
        assert s.size_bytes(DataType.INT16) == 128
        assert s.size_bytes(DataType.FP32) == 256

    @pytest.mark.parametrize("h,w,c", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_nonpositive_dims(self, h, w, c):
        with pytest.raises(ValueError):
            TensorShape(h, w, c)

    def test_as_tuple_and_str(self):
        s = TensorShape(5, 6, 7)
        assert s.as_tuple() == (5, 6, 7)
        assert str(s) == "5x6x7"


class TestInterval:
    def test_length_and_empty(self):
        assert Interval(2, 5).length == 3
        assert Interval(3, 3).is_empty
        assert not Interval(3, 4).is_empty

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 2)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Interval(-1, 2)

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 8)) == Interval(3, 5)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 2).intersect(Interval(5, 8)).is_empty

    def test_union_hull(self):
        assert Interval(0, 2).union_hull(Interval(5, 8)) == Interval(0, 8)

    def test_contains(self):
        assert Interval(0, 10).contains(Interval(2, 5))
        assert not Interval(0, 10).contains(Interval(8, 12))

    def test_shift(self):
        assert Interval(2, 5).shift(3) == Interval(5, 8)

    def test_clamp(self):
        assert Interval(2, 9).clamp(4, 7) == Interval(4, 7)
        assert Interval(0, 3).clamp(5, 9).is_empty

    def test_iteration(self):
        assert list(Interval(2, 5)) == [2, 3, 4]


class TestRegion:
    def test_full(self):
        shape = TensorShape(4, 5, 6)
        region = Region.full(shape)
        assert region.shape == shape
        assert region.num_elements == 120

    def test_empty_region_has_no_shape(self):
        empty = Region(Interval(0, 0), Interval(0, 1), Interval(0, 1))
        assert empty.is_empty
        with pytest.raises(ValueError):
            _ = empty.shape

    def test_intersect(self):
        a = Region(Interval(0, 4), Interval(0, 4), Interval(0, 4))
        b = Region(Interval(2, 6), Interval(1, 3), Interval(0, 4))
        c = a.intersect(b)
        assert c.rows == Interval(2, 4)
        assert c.cols == Interval(1, 3)
        assert c.chans == Interval(0, 4)

    def test_contains_and_within(self):
        shape = TensorShape(8, 8, 8)
        inner = Region(Interval(1, 3), Interval(2, 4), Interval(0, 8))
        assert Region.full(shape).contains(inner)
        assert inner.within(shape)

    def test_as_slices_roundtrip(self):
        import numpy as np

        arr = np.arange(4 * 5 * 6).reshape(4, 5, 6)
        region = Region(Interval(1, 3), Interval(0, 2), Interval(4, 6))
        sliced = arr[region.as_slices()]
        assert sliced.shape == (2, 2, 2)
        assert sliced[0, 0, 0] == arr[1, 0, 4]


class TestSplitEven:
    def test_exact_division(self):
        parts = split_interval_even(9, 3)
        assert [p.length for p in parts] == [3, 3, 3]

    def test_remainder_goes_first(self):
        parts = split_interval_even(10, 3)
        assert [p.length for p in parts] == [4, 3, 3]

    def test_more_parts_than_items(self):
        parts = split_interval_even(2, 4)
        assert [p.length for p in parts] == [1, 1, 0, 0]

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            split_interval_even(4, 0)

    @given(st.integers(0, 200), st.integers(1, 10))
    def test_covers_exactly(self, total, parts):
        intervals = split_interval_even(total, parts)
        assert intervals[0].start == 0
        assert intervals[-1].stop == total
        for a, b in zip(intervals, intervals[1:]):
            assert a.stop == b.start


class TestSplitWeighted:
    def test_proportional(self):
        parts = split_interval_weighted(100, (1.0, 1.0), alignment=1)
        assert [p.length for p in parts] == [50, 50]

    def test_alignment_respected(self):
        parts = split_interval_weighted(96, (1.0, 1.0, 1.0), alignment=16)
        for p in parts[:-1]:
            assert p.length % 16 == 0
        assert sum(p.length for p in parts) == 96

    def test_zero_weight_gets_nothing(self):
        parts = split_interval_weighted(64, (1.0, 0.0, 1.0), alignment=4)
        assert parts[1].is_empty
        assert sum(p.length for p in parts) == 64

    def test_last_positive_weight_absorbs_remainder(self):
        parts = split_interval_weighted(10, (1.0, 1.0, 0.0), alignment=4)
        assert parts[2].is_empty
        assert sum(p.length for p in parts) == 10

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            split_interval_weighted(10, (0.0, 0.0))

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            split_interval_weighted(10, (1.0, -1.0))

    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            split_interval_weighted(10, ())

    @given(
        st.integers(0, 500),
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=6),
        st.sampled_from([1, 2, 4, 16, 32]),
    )
    def test_always_covers_exactly(self, total, weights, alignment):
        if sum(weights) == 0:
            weights = weights[:-1] + [1.0]
        intervals = split_interval_weighted(total, tuple(weights), alignment)
        assert intervals[0].start == 0
        assert intervals[-1].stop == total
        for a, b in zip(intervals, intervals[1:]):
            assert a.stop == b.start

    @given(
        st.integers(1, 500),
        st.integers(2, 5),
        st.sampled_from([2, 8, 32]),
    )
    def test_nonlast_parts_aligned(self, total, n, alignment):
        intervals = split_interval_weighted(total, (1.0,) * n, alignment)
        nonempty = [iv for iv in intervals if not iv.is_empty]
        for iv in nonempty[:-1]:
            assert iv.start % alignment == 0
