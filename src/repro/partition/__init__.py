"""Layer partitioning across NPU cores (operator parallelism)."""

from repro.partition.direction import (
    CONV_PARTITIONING_METHODS,
    PartitionDirection,
    PartitioningMethod,
    PartitionPolicy,
    preferred_methods,
)
from repro.partition.heuristics import (
    ALL_HEURISTICS,
    DirectionChoice,
    channel_feasible,
    choose_direction,
    spatial_feasible,
)
from repro.partition.balance import balance_intervals, balance_weights
from repro.partition.partitioner import (
    GraphPartition,
    partition_graph,
    partition_layer,
)
from repro.partition.slicer import (
    LayerPartition,
    SubLayer,
    build_sub_layers,
    halo_exchange_bytes,
    halo_regions,
    output_regions,
    spatial_halo_rows,
    validate_partition_covers_output,
)

__all__ = [
    "ALL_HEURISTICS",
    "CONV_PARTITIONING_METHODS",
    "DirectionChoice",
    "GraphPartition",
    "LayerPartition",
    "PartitionDirection",
    "PartitionPolicy",
    "PartitioningMethod",
    "SubLayer",
    "balance_intervals",
    "balance_weights",
    "build_sub_layers",
    "channel_feasible",
    "choose_direction",
    "halo_exchange_bytes",
    "halo_regions",
    "output_regions",
    "partition_graph",
    "partition_layer",
    "preferred_methods",
    "spatial_feasible",
    "spatial_halo_rows",
    "validate_partition_covers_output",
]
