"""Structure pass: RPR2xx on hand-built broken programs."""

from repro.compiler.program import Command, CommandKind, Program
from repro.verify import Severity, check_structure


def prog(*commands, num_cores=2):
    return Program(num_cores=num_cores, commands=list(commands))


def codes(result):
    return sorted({d.code for d in result.diagnostics})


class TestWellFormed:
    def test_clean_program(self):
        result = check_structure(
            prog(
                Command(cid=0, core=0, kind=CommandKind.LOAD_INPUT, num_bytes=4),
                Command(cid=1, core=0, kind=CommandKind.COMPUTE, deps=(0,), macs=8),
                Command(
                    cid=2, core=0, kind=CommandKind.STORE_OUTPUT, deps=(1,), num_bytes=4
                ),
            )
        )
        assert result.ok and not result.diagnostics
        assert result.stats["commands"] == 3
        assert result.stats["edges"] == 2

    def test_duplicate_cid(self):
        result = check_structure(
            prog(
                Command(cid=0, core=0, kind=CommandKind.COMPUTE, macs=1),
                Command(cid=0, core=0, kind=CommandKind.COMPUTE, macs=1),
            )
        )
        assert "RPR204" in codes(result)

    def test_bad_core(self):
        result = check_structure(
            prog(Command(cid=0, core=5, kind=CommandKind.COMPUTE, macs=1))
        )
        assert "RPR205" in codes(result)

    def test_self_dep(self):
        result = check_structure(
            prog(Command(cid=0, core=0, kind=CommandKind.COMPUTE, deps=(0,), macs=1))
        )
        assert "RPR202" in codes(result)

    def test_dangling_dep(self):
        result = check_structure(
            prog(
                Command(cid=0, core=0, kind=CommandKind.COMPUTE, deps=(9,), macs=1)
            )
        )
        assert "RPR201" in codes(result)
        assert not result.ok

    def test_forward_dep_is_warning(self):
        # A forward edge to a command on a *different* queue is suspicious
        # but executable; the pass flags it without failing the program.
        result = check_structure(
            prog(
                Command(cid=0, core=0, kind=CommandKind.COMPUTE, deps=(1,), macs=1),
                Command(cid=1, core=0, kind=CommandKind.LOAD_INPUT, num_bytes=4),
            )
        )
        forward = [d for d in result.diagnostics if d.code == "RPR201"]
        assert forward and all(d.severity is Severity.WARNING for d in forward)


class TestPayloads:
    def test_bytes_on_compute(self):
        result = check_structure(
            prog(Command(cid=0, core=0, kind=CommandKind.COMPUTE, num_bytes=4))
        )
        assert "RPR206" in codes(result)

    def test_macs_on_dma(self):
        result = check_structure(
            prog(Command(cid=0, core=0, kind=CommandKind.LOAD_WEIGHT, macs=4))
        )
        assert "RPR206" in codes(result)

    def test_payload_on_barrier(self):
        result = check_structure(
            prog(Command(cid=0, core=0, kind=CommandKind.BARRIER, num_bytes=4))
        )
        assert "RPR206" in codes(result)

    def test_negative_cycles(self):
        result = check_structure(
            prog(Command(cid=0, core=0, kind=CommandKind.BARRIER, cycles=-2.0))
        )
        assert "RPR206" in codes(result)


class TestDeadlock:
    def test_queue_cycle_detected(self):
        # Two commands share the compute queue of core 0: #0 is ahead of
        # #1 in program order but depends on it -- #0 waits for #1 to
        # complete while #1 waits behind #0 at the queue head.  Deadlock.
        result = check_structure(
            prog(
                Command(cid=0, core=0, kind=CommandKind.COMPUTE, deps=(1,), macs=1),
                Command(cid=1, core=0, kind=CommandKind.COMPUTE, macs=1),
            )
        )
        assert "RPR203" in codes(result)
        assert not result.ok

    def test_cross_queue_forward_dep_no_cycle(self):
        # The same forward edge across two different queues does not
        # deadlock: the load can run first.
        result = check_structure(
            prog(
                Command(cid=0, core=0, kind=CommandKind.COMPUTE, deps=(1,), macs=1),
                Command(cid=1, core=1, kind=CommandKind.COMPUTE, macs=1),
            )
        )
        assert "RPR203" not in codes(result)
