"""Rendering and export for fleet-serving reports.

Same separation as :mod:`repro.analysis.serving`: the fleet layer
produces :class:`~repro.serve.fleet.FleetReport` objects, this module
turns one (or a router comparison set) into the per-device table, the
router-comparison table, and the JSON artifact ``bench_fleet``
persists.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence, Union

from repro.analysis.serving import _pct
from repro.analysis.tables import format_table
from repro.serve.fleet import FleetReport


def fleet_device_rows(report: FleetReport) -> List[List[str]]:
    """One row per device, plus a fleet-aggregate footer row."""
    rows = [
        [
            str(d.device_id),
            d.machine,
            "-" if d.killed_at_us is None else f"@{d.killed_at_us:,.0f}us",
            str(d.num_routed),
            str(d.num_served),
            str(d.num_shed),
            _pct(d.report.p50_us),
            _pct(d.report.p99_us),
            f"{d.report.mean_utilization:.1%}",
            f"{d.memo_stats.get('hit_rate', 0.0):.1%}",
        ]
        for d in report.devices
    ]
    rows.append(
        [
            "fleet",
            f"x{report.num_devices}",
            "-",
            str(report.num_generated),
            str(report.num_served),
            str(report.num_shed),
            _pct(report.p50_us),
            _pct(report.p99_us),
            "-",
            f"{report.memo_hit_rate:.1%}",
        ]
    )
    return rows


def render_fleet_table(report: FleetReport) -> str:
    """The per-device breakdown of one fleet run."""
    return format_table(
        [
            "Dev", "Machine", "Killed", "Routed", "Served", "Shed",
            "p50", "p99", "Util", "Memo",
        ],
        fleet_device_rows(report),
        title=(
            f"fleet {'+'.join(report.models)} x{report.num_devices} devices, "
            f"router={report.router}, policy={report.policy}/{report.mode}, "
            f"arrival={report.arrival} ({report.rps:,.0f} rps for "
            f"{report.duration_us / 1000:.1f} ms, seed {report.seed})"
        ),
    )


def render_router_comparison(reports: Sequence[FleetReport]) -> str:
    """Routers side by side over the identical workload."""
    if not reports:
        raise ValueError("no fleet reports to render")
    first = reports[0]
    rows = [
        [
            r.router,
            str(r.num_served),
            str(r.num_shed),
            _pct(r.p50_us),
            _pct(r.p95_us),
            _pct(r.p99_us),
            f"{r.slo_miss_rate:.1%}",
            f"{r.throughput_rps:,.0f}",
            f"{r.memo_hit_rate:.1%}",
        ]
        for r in reports
    ]
    return format_table(
        [
            "Router", "Served", "Shed", "p50", "p95", "p99",
            "SLO miss", "Thr (r/s)", "Memo",
        ],
        rows,
        title=(
            f"router comparison: {'+'.join(first.models)} on "
            f"{first.num_devices} devices ({first.rps:,.0f} rps, "
            f"seed {first.seed})"
        ),
    )


def fleet_summary(reports: Sequence[FleetReport]) -> Dict:
    """A JSON-ready summary keyed by router name.

    Includes ``"vs_round_robin"`` p99 ratios whenever the round-robin
    baseline is in the set -- the number the fleet benchmark gates on
    (an informed router should not lose to blind rotation).
    """
    out: Dict = {"routers": {r.router: r.to_dict() for r in reports}}
    rr = next((r for r in reports if r.router == "round-robin"), None)
    if rr is not None and rr.p99_us:
        vs: Dict = {}
        for r in reports:
            if r.router == "round-robin" or r.p99_us is None:
                continue
            vs[r.router] = {
                "p99_ratio": r.p99_us / rr.p99_us,
                "p99_improvement": rr.p99_us / r.p99_us,
                "memo_hit_rate_delta": r.memo_hit_rate - rr.memo_hit_rate,
            }
        if vs:
            out["vs_round_robin"] = vs
    out["conserved"] = all(r.conserved for r in reports)
    return out


def write_fleet_report(
    reports: Sequence[FleetReport], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Persist :func:`fleet_summary` as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(fleet_summary(reports), indent=2, sort_keys=True) + "\n"
    )
    return path
