"""Table 4-style per-core profiles and Table 5-style region summaries."""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.analysis.compare import ConfigResult, run_configuration
from repro.compiler.options import CompileOptions
from repro.hw.config import NPUConfig
from repro.ir.graph import Graph
from repro.partition.direction import PartitionPolicy


@dataclasses.dataclass
class PartitioningProfile:
    """One block of Table 4: per-core transfer and idle for one policy."""

    policy: PartitionPolicy
    transfer_kb_per_core: List[float]
    idle_us_per_core: List[float]
    transfer_mean_kb: float
    transfer_std_kb: float
    idle_mean_us: float
    idle_std_us: float
    latency_us: float

    @property
    def total_transfer_kb(self) -> float:
        return sum(self.transfer_kb_per_core)


def partitioning_profile(
    graph: Graph,
    npu: NPUConfig,
    policy: PartitionPolicy,
    seed: int = 0,
) -> PartitioningProfile:
    """Profile one partitioning scheme under the Base optimization level."""
    result = run_configuration(
        graph, npu, CompileOptions.base(policy=policy), seed=seed
    )
    st = result.stats
    return PartitioningProfile(
        policy=policy,
        transfer_kb_per_core=[c.transfer_kb for c in st.cores],
        idle_us_per_core=[
            st._cycles_to_us(c.idle_cycles) for c in st.cores
        ],
        transfer_mean_kb=st.transfer_mean_kb,
        transfer_std_kb=st.transfer_std_kb,
        idle_mean_us=st.idle_mean_us,
        idle_std_us=st.idle_std_us,
        latency_us=st.latency_us,
    )


def table4_profiles(
    graph: Graph, npu: NPUConfig, seed: int = 0
) -> Dict[PartitionPolicy, PartitioningProfile]:
    """The three partitioning schemes Table 4 compares."""
    return {
        policy: partitioning_profile(graph, npu, policy, seed=seed)
        for policy in (
            PartitionPolicy.SPATIAL_ONLY,
            PartitionPolicy.CHANNEL_ONLY,
            PartitionPolicy.ADAPTIVE,
        )
    }


@dataclasses.dataclass
class RegionSummary:
    """One row of Table 5: a configuration on a network region."""

    label: str
    latency_us: float
    compute_gmacs: float
    sync_mean_us: float
    sync_std_us: float


def region_summary(result: ConfigResult) -> RegionSummary:
    st = result.stats
    return RegionSummary(
        label=result.label,
        latency_us=st.latency_us,
        compute_gmacs=st.total_macs / 1e9,
        sync_mean_us=st.sync_overhead_mean_us,
        sync_std_us=st.sync_overhead_std_us,
    )
