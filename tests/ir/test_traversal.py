"""Depth-first / breadth-first traversal orders (Figure 6)."""


from repro.ir import Conv2D, Graph, Input, TensorShape, Window2D
from repro.ir.traversal import (
    breadth_first_order,
    depth_first_order,
    depth_first_tree,
    is_ancestor,
)

from tests.conftest import make_branchy_graph


def _conv(c_in: int, c_out: int) -> Conv2D:
    return Conv2D(out_channels=c_out, in_channels=c_in, window=Window2D.square(3))


def diamond() -> Graph:
    g = Graph("diamond")
    g.add("in", Input(TensorShape(8, 8, 4)))
    g.add("top", _conv(4, 4), ["in"])
    g.add("l", _conv(4, 4), ["top"])
    g.add("r", _conv(4, 4), ["top"])
    g.add("l2", _conv(4, 4), ["l"])
    from repro.ir import Add

    g.add("join", Add(), ["l2", "r"])
    return g


def _is_topological(graph: Graph, order):
    pos = {n: i for i, n in enumerate(order)}
    for layer in graph.layers():
        for src in layer.inputs:
            assert pos[src] < pos[layer.name]


class TestDepthFirst:
    def test_topological(self):
        g = diamond()
        _is_topological(g, depth_first_order(g))

    def test_chases_chains(self):
        """DFS runs l -> l2 before switching to r (or r first, then l, l2)."""
        order = depth_first_order(diamond())
        i_l, i_l2, i_r = order.index("l"), order.index("l2"), order.index("r")
        # l2 immediately follows l: the depth-first property.
        assert i_l2 == i_l + 1 or i_r < i_l

    def test_covers_all(self):
        g = make_branchy_graph()
        assert sorted(depth_first_order(g)) == sorted(g.topological_order())


class TestBreadthFirst:
    def test_topological(self):
        g = diamond()
        _is_topological(g, breadth_first_order(g))

    def test_level_order(self):
        order = breadth_first_order(diamond())
        # siblings l and r come before the grandchild l2.
        assert order.index("l") < order.index("l2")
        assert order.index("r") < order.index("l2")

    def test_covers_all(self):
        g = make_branchy_graph()
        assert sorted(breadth_first_order(g)) == sorted(g.topological_order())


class TestDepthFirstTree:
    def test_inputs_are_roots(self):
        g = diamond()
        tree = depth_first_tree(g)
        assert tree["in"] == "in"

    def test_parent_is_a_producer(self):
        g = make_branchy_graph()
        tree = depth_first_tree(g)
        for name, parent in tree.items():
            if parent != name:
                assert parent in g.producers(name)


class TestIsAncestor:
    def test_direct_and_transitive(self):
        g = diamond()
        assert is_ancestor(g, "top", "l2")
        assert is_ancestor(g, "in", "join")
        assert is_ancestor(g, "l", "l")

    def test_not_ancestor_of_sibling(self):
        g = diamond()
        assert not is_ancestor(g, "l", "r")
        assert not is_ancestor(g, "join", "top")
