"""Static latency brackets over compiled command streams (RPR7xx).

From a :class:`~repro.compiler.program.Program` and an
:class:`~repro.hw.config.NPUConfig` alone -- no simulation -- this pass
computes an analytic bracket ``lower_bound <= makespan <= upper_bound``
that every clean simulated run of the program provably falls inside,
for every seed.  The bracket doubles as:

* a **simulator oracle**: ``simulate(..., check_bounds=True)`` and
  ``SimSession(check_bounds=True)`` assert every clean result against
  its bracket, guarding future rewrites of the simulator hot loop;
* a **pre-screening cost model**: :meth:`repro.serve.LatencyPredictor.bound`
  lets admission policies discard candidate waves whose *best possible*
  throughput cannot beat the incumbent, without simulating them.

Soundness argument (both directions are inductions over the simulator's
exact start recurrence ``start[c] = max(done[queue predecessor],
max(done[deps]))``):

* **lower bound** -- every command's simulated service time is at least
  its optimistic duration: compute and the fixed DMA latency are
  deterministic, jitter draws are nonnegative, and a bus transfer at
  full rate ``min(link cap, bus bandwidth)`` can finish no sooner than
  ``bytes / rate`` (minus the epsilon byte residue at which the fluid
  bus retires transfers, absorbed by a small byte slack).  The longest
  path through dependency and engine-order edges with these durations
  is therefore a floor, as is the aggregate-DMA-bytes / bus-bandwidth
  floor (water-filling never allocates more than the bus bandwidth in
  total) and the per-(core, engine) serial-work floor (each in-order
  queue runs one command at a time; always dominated by the longest
  path, which contains every queue chain, but reported for attribution).
* **upper bound** -- a list-scheduling relaxation with worst-case bus
  sharing: at most one ``bytes > 0`` transfer per (core, DMA-engine)
  queue is ever in flight, so water-filling guarantees every transfer a
  rate of at least ``min(link cap, bandwidth / #DMA-queues)``; jitter
  draws are bounded by their configured maxima.  With every duration at
  its pessimistic value the same longest-path recurrence dominates the
  simulated completion times command by command.

Faulted runs (throttling, stalls, core death) deliberately violate the
bracket -- the oracle applies to clean runs only and the wiring refuses
to check anything else.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.critical_path import (
    category_of,
    engine_predecessors,
    longest_path_times,
    walk_bindings,
)
from repro.compiler.program import CommandKind, Program
from repro.cost.compute import compute_cycles
from repro.hw.config import NPUConfig
from repro.verify.diagnostics import PassResult, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.compiler import CompiledModel
    from repro.sim.simulator import SimResult

#: byte slack subtracted from optimistic transfer times: the fluid bus
#: retires a transfer once its residual drops below an epsilon, and the
#: float-resolution fallback can retire the nearest transfer a hair
#: early; 1e-3 bytes (< 1e-4 cycles at any shipped rate) covers both.
_LB_BYTE_SLACK = 1e-3

#: containment tolerance: absolute float slop plus a relative term for
#: long programs whose bound DP accumulates rounding differently than
#: the event loop.
_ABS_TOL = 1e-6
_REL_TOL = 1e-9

#: attribute under which per-machine bounds reports are cached on a
#: Program (sibling of the simulator's ``_sim_plans`` plan cache).
_BOUNDS_ATTR = "_sim_bounds"

_HALO_KINDS = (CommandKind.HALO_SEND, CommandKind.HALO_RECV)


class BoundsViolation(AssertionError):
    """A simulated makespan escaped its static bracket.

    Raised by ``simulate(check_bounds=True)`` and
    ``SimSession(check_bounds=True)``; either the program under test
    tripped a genuine scheduler bug or the bounds derivation itself
    regressed -- both are stop-the-world findings.
    """

    def __init__(self, makespan_cycles: float, report: "BoundsReport", context: str = "") -> None:
        self.makespan_cycles = makespan_cycles
        self.report = report
        where = f" ({context})" if context else ""
        super().__init__(
            f"simulated makespan {makespan_cycles:,.1f} cycles escaped the "
            f"static bracket [{report.lower_bound_cycles:,.1f}, "
            f"{report.upper_bound_cycles:,.1f}]{where}"
        )


@dataclasses.dataclass(frozen=True)
class BoundsReport:
    """Analytic latency bracket of one (program, machine) pair.

    All times are in cycles of the machine's clock;
    :attr:`lower_bound_us` / :attr:`upper_bound_us` convert using the
    machine frequency captured at derivation time.  ``binding`` names
    the dominant resource of the lower bound: ``compute`` (MAC arrays),
    ``bus`` (DMA traffic on the shared bus), or ``sync`` (barriers and
    halo rendezvous on the critical path).
    """

    num_commands: int
    lower_bound_cycles: float
    upper_bound_cycles: float
    #: longest path through dep + engine-order edges, optimistic durations.
    critical_path_cycles: float
    #: largest per-(core, engine) serial work (always <= critical path).
    engine_serial_cycles: float
    #: total DMA bytes / bus bandwidth.
    bus_floor_cycles: float
    #: dominant lower-bound resource: 'compute' | 'bus' | 'sync'.
    binding: str
    #: optimistic-duration cycles on the lower-bound critical path, per
    #: category (compute / dma / halo / sync).
    breakdown: Dict[str, float]
    #: the lower-bound critical path, last command first.
    path_cids: Tuple[int, ...]
    #: (core, DMA-engine) queues with bytes>0 transfers -- the worst-case
    #: bus sharing degree of the upper bound.
    max_concurrent_dma: int
    frequency_ghz: float

    @property
    def lower_bound_us(self) -> float:
        return self.lower_bound_cycles / (self.frequency_ghz * 1000.0)

    @property
    def upper_bound_us(self) -> float:
        return self.upper_bound_cycles / (self.frequency_ghz * 1000.0)

    def _tolerance(self) -> float:
        return _ABS_TOL + _REL_TOL * self.upper_bound_cycles

    def contains(self, makespan_cycles: float) -> bool:
        """True when a simulated makespan falls inside the bracket."""
        tol = self._tolerance()
        return (
            self.lower_bound_cycles - tol
            <= makespan_cycles
            <= self.upper_bound_cycles + tol
        )

    def tightness(self, makespan_cycles: float) -> float:
        """Simulated / lower bound -- 1.0 is a perfectly tight floor."""
        if self.lower_bound_cycles <= 0.0:
            return 1.0 if makespan_cycles <= 0.0 else float("inf")
        return makespan_cycles / self.lower_bound_cycles

    def assert_contains(self, makespan_cycles: float, context: str = "") -> None:
        if not self.contains(makespan_cycles):
            raise BoundsViolation(makespan_cycles, self, context)

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_commands": self.num_commands,
            "lower_bound_cycles": self.lower_bound_cycles,
            "upper_bound_cycles": self.upper_bound_cycles,
            "lower_bound_us": self.lower_bound_us,
            "upper_bound_us": self.upper_bound_us,
            "critical_path_cycles": self.critical_path_cycles,
            "engine_serial_cycles": self.engine_serial_cycles,
            "bus_floor_cycles": self.bus_floor_cycles,
            "binding": self.binding,
            "breakdown": dict(self.breakdown),
            "max_concurrent_dma": self.max_concurrent_dma,
        }


def _durations(
    program: Program, npu: NPUConfig, n_dma_queues: int
) -> Tuple[List[float], List[float], float]:
    """Per-command (optimistic, pessimistic) durations + total DMA bytes."""
    n = len(program.commands)
    lo = [0.0] * n
    hi = [0.0] * n
    bw = npu.bus_bytes_per_cycle
    dram_latency = npu.dram_latency_cycles
    total_bytes = 0.0
    for cmd in program.commands:
        cid = cmd.cid
        kind = cmd.kind
        if kind is CommandKind.COMPUTE:
            d = compute_cycles(cmd.macs, npu.core(cmd.core))
            lo[cid] = hi[cid] = d
        elif kind is CommandKind.BARRIER:
            lo[cid] = cmd.cycles
            hi[cid] = cmd.cycles + npu.sync_jitter_cycles
        else:  # DMA: fixed latency, optional jitter, then the bus.
            base = dram_latency + cmd.cycles
            jitter = npu.halo_jitter_cycles if kind in _HALO_KINDS else 0.0
            lo[cid] = base
            hi[cid] = base + jitter
            if cmd.num_bytes > 0:
                cap = npu.core(cmd.core).dma_bytes_per_cycle
                full = min(cap, bw)
                shared = min(cap, bw / n_dma_queues) if n_dma_queues else full
                lo[cid] += max(0.0, cmd.num_bytes - _LB_BYTE_SLACK) / full
                hi[cid] += cmd.num_bytes / shared
                total_bytes += max(0.0, cmd.num_bytes - _LB_BYTE_SLACK)
    return lo, hi, total_bytes


def compute_bounds(program: Program, npu: NPUConfig) -> BoundsReport:
    """Derive the analytic latency bracket of ``program`` on ``npu``.

    Seed-independent: the lower bound assumes zero coordination jitter,
    the upper bound the configured jitter maxima, so one bracket holds
    for every seed.  Cost is two O(commands + edges) longest-path
    sweeps; use :func:`bounds_for` for the per-program cached variant.
    """
    program.validate()
    commands = program.commands
    if not commands:
        return BoundsReport(
            num_commands=0,
            lower_bound_cycles=0.0,
            upper_bound_cycles=0.0,
            critical_path_cycles=0.0,
            engine_serial_cycles=0.0,
            bus_floor_cycles=0.0,
            binding="compute",
            breakdown={},
            path_cids=(),
            max_concurrent_dma=0,
            frequency_ghz=npu.frequency_ghz,
        )

    dma_queues = {
        (cmd.core, cmd.engine)
        for cmd in commands
        if cmd.is_dma and cmd.num_bytes > 0
    }
    n_dma = len(dma_queues)
    lo, hi, total_bytes = _durations(program, npu, n_dma)

    engine_prev = engine_predecessors(program)
    _, lb_finish, lb_bindings = longest_path_times(program, lo, engine_prev)
    _, ub_finish, _ = longest_path_times(program, hi, engine_prev)

    last = max(range(len(commands)), key=lambda c: (lb_finish[c], -c))
    critical = lb_finish[last]
    upper = max(ub_finish)

    queue_work: Dict[Tuple[int, object], float] = {}
    for cmd in commands:
        key = (cmd.core, cmd.engine)
        queue_work[key] = queue_work.get(key, 0.0) + lo[cmd.cid]
    engine_serial = max(queue_work.values())

    bw = npu.bus_bytes_per_cycle
    bus_floor = total_bytes / bw if bw > 0 else 0.0

    lower = max(critical, engine_serial, bus_floor)

    path = walk_bindings(lb_bindings, last)
    breakdown: Dict[str, float] = {}
    for cid, _bound_by in path:
        cat = category_of(commands[cid].kind)
        breakdown[cat] = breakdown.get(cat, 0.0) + lo[cid]

    if bus_floor >= lower:
        binding = "bus"
    else:
        # dominant category along the lower-bound path; halo rendezvous
        # and barriers are both coordination -> 'sync', DMA -> 'bus'.
        grouped = {
            "compute": breakdown.get("compute", 0.0),
            "bus": breakdown.get("dma", 0.0),
            "sync": breakdown.get("sync", 0.0) + breakdown.get("halo", 0.0),
        }
        binding = max(grouped, key=lambda k: (grouped[k], k))

    return BoundsReport(
        num_commands=len(commands),
        lower_bound_cycles=lower,
        upper_bound_cycles=upper,
        critical_path_cycles=critical,
        engine_serial_cycles=engine_serial,
        bus_floor_cycles=bus_floor,
        binding=binding,
        breakdown=breakdown,
        path_cids=tuple(cid for cid, _ in path),
        max_concurrent_dma=n_dma,
        frequency_ghz=npu.frequency_ghz,
    )


def bounds_for(program: Program, npu: NPUConfig) -> BoundsReport:
    """Cached :func:`compute_bounds`, keyed like the simulator plan cache.

    The cache lives on the program object keyed by the (hashable,
    frozen) machine description, so repeated oracle checks and
    predictor pre-screens pay the derivation once per machine.
    """
    cache: Optional[Dict[NPUConfig, BoundsReport]] = getattr(
        program, _BOUNDS_ATTR, None
    )
    if cache is None:
        cache = {}
        setattr(program, _BOUNDS_ATTR, cache)
    report = cache.get(npu)
    if report is None or report.num_commands != len(program.commands):
        report = compute_bounds(program, npu)
        cache[npu] = report
    return report


def check_bounds_pass(
    compiled: "CompiledModel", sim_result: "Optional[SimResult]" = None
) -> PassResult:
    """The ``bounds`` verifier pass (RPR7xx).

    Always emits the bracket itself as an informational RPR701.  Given
    a simulation result (``repro lint --passes bounds --trace``), also
    cross-checks the measured makespan: inside the bracket emits the
    tightness note RPR702, outside the error RPR710.
    """
    result = PassResult(name="bounds")
    report = bounds_for(compiled.program, compiled.npu)
    result.stats["commands"] = report.num_commands
    result.stats["dma_queues"] = report.max_concurrent_dma
    result.stats["lower_bound_cycles"] = int(report.lower_bound_cycles)
    result.stats["upper_bound_cycles"] = int(report.upper_bound_cycles)
    result.emit(
        "RPR701",
        f"latency bracket [{report.lower_bound_us:,.1f}, "
        f"{report.upper_bound_us:,.1f}] us ({report.binding}-bound; "
        f"critical path {report.critical_path_cycles:,.0f}, "
        f"bus floor {report.bus_floor_cycles:,.0f} cycles)",
        severity=Severity.INFO,
        hint="lower the dominant component to improve the best case",
    )
    if sim_result is not None:
        makespan = sim_result.makespan_cycles
        if report.contains(makespan):
            result.emit(
                "RPR702",
                f"simulated makespan {compiled.npu.cycles_to_us(makespan):,.1f} us "
                f"inside the bracket (tightness sim/lb = "
                f"{report.tightness(makespan):.3f})",
                severity=Severity.INFO,
            )
        else:
            result.emit(
                "RPR710",
                f"simulated makespan {makespan:,.1f} cycles escaped the "
                f"bracket [{report.lower_bound_cycles:,.1f}, "
                f"{report.upper_bound_cycles:,.1f}]",
                severity=Severity.ERROR,
                hint="scheduler or bounds regression; bisect the simulator "
                "against repro.sim.event_core",
            )
    return result
