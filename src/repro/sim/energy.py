"""Energy estimation over a simulated trace.

The paper motivates feature-map forwarding with "great benefits in terms
of performance, power, and memory bandwidth" (Section 3, item 3): every
store/load round trip eliminated is DRAM traffic, and DRAM accesses cost
an order of magnitude more energy than SPM accesses or MACs.  This module
prices a trace with a simple, transparent per-event model so those
claims can be quantified per configuration.

Default coefficients are generic 5 nm-class mobile-SoC numbers (order of
magnitude, not vendor data): ~0.25 pJ per INT8 MAC including its operand
movement inside the PE array, ~20 pJ per LPDDR5 byte, ~0.6 pJ per SPM
byte, and tens of nanojoules per driver-mediated synchronization.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.compiler.program import CommandKind
from repro.hw.config import NPUConfig
from repro.sim.trace import Trace

_DMA_KINDS = (
    CommandKind.LOAD_INPUT,
    CommandKind.LOAD_WEIGHT,
    CommandKind.STORE_OUTPUT,
    CommandKind.HALO_SEND,
    CommandKind.HALO_RECV,
)


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Per-event energy coefficients."""

    pj_per_mac: float = 0.25
    pj_per_dram_byte: float = 20.0
    pj_per_spm_byte: float = 0.6
    nj_per_sync: float = 40.0
    #: static (leakage + clocking) power of the whole NPU subsystem.
    static_mw: float = 60.0

    def __post_init__(self) -> None:
        for field in (
            "pj_per_mac",
            "pj_per_dram_byte",
            "pj_per_spm_byte",
            "nj_per_sync",
            "static_mw",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")


@dataclasses.dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulated inference, in microjoules."""

    compute_uj: float
    dram_uj: float
    spm_uj: float
    sync_uj: float
    static_uj: float
    latency_us: float

    @property
    def total_uj(self) -> float:
        return (
            self.compute_uj
            + self.dram_uj
            + self.spm_uj
            + self.sync_uj
            + self.static_uj
        )

    @property
    def average_power_mw(self) -> float:
        """Mean power over the inference (uJ / us == W; reported in mW)."""
        if self.latency_us <= 0:
            return 0.0
        return self.total_uj / self.latency_us * 1000.0

    def breakdown(self) -> Dict[str, float]:
        return {
            "compute": self.compute_uj,
            "dram": self.dram_uj,
            "spm": self.spm_uj,
            "sync": self.sync_uj,
            "static": self.static_uj,
        }


def estimate_energy(
    trace: Trace,
    npu: NPUConfig,
    model: EnergyModel = EnergyModel(),
) -> EnergyReport:
    """Price every trace event with ``model``.

    Each DMA byte pays one DRAM access plus one SPM access (the local
    copy); each MAC pays its coefficient (operand movement inside the PE
    array included); each barrier command pays the sync cost once per
    participating core.
    """
    macs_col = trace.column("macs")
    bytes_col = trace.column("num_bytes")
    macs = sum(macs_col[p] for p in trace.positions("kind", CommandKind.COMPUTE))
    dma_bytes = sum(
        bytes_col[p]
        for kind in _DMA_KINDS
        for p in trace.positions("kind", kind)
    )
    syncs = len(trace.positions("kind", CommandKind.BARRIER))

    latency_us = npu.cycles_to_us(trace.makespan)
    return EnergyReport(
        compute_uj=macs * model.pj_per_mac * 1e-6,
        dram_uj=dma_bytes * model.pj_per_dram_byte * 1e-6,
        spm_uj=dma_bytes * model.pj_per_spm_byte * 1e-6,
        sync_uj=syncs * model.nj_per_sync * 1e-3,
        static_uj=model.static_mw * latency_us * 1e-3,
        latency_us=latency_us,
    )


def compare_energy(
    reports: Dict[str, EnergyReport]
) -> Tuple[str, Dict[str, float]]:
    """Best configuration by total energy plus per-config totals."""
    totals = {label: r.total_uj for label, r in reports.items()}
    best = min(totals, key=totals.get)
    return best, totals
