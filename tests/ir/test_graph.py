"""Graph construction, validation, queries, and subgraph extraction."""

import pytest

from repro.ir import (
    Add,
    Concat,
    Conv2D,
    DataType,
    Graph,
    GraphError,
    Input,
    Interval,
    Region,
    TensorShape,
    Window2D,
)


def small_graph() -> Graph:
    g = Graph("g")
    g.add("in", Input(TensorShape(8, 8, 4)))
    g.add("a", Conv2D(out_channels=8, in_channels=4, window=Window2D.square(3)), ["in"])
    g.add("b", Conv2D(out_channels=8, in_channels=8, window=Window2D.square(3)), ["a"])
    g.add("c", Conv2D(out_channels=8, in_channels=8, window=Window2D.square(1)), ["a"])
    g.add("d", Add(), ["b", "c"])
    return g


class TestBuild:
    def test_shapes_inferred_eagerly(self):
        g = small_graph()
        assert g.layer("b").output_shape == TensorShape(8, 8, 8)
        assert g.layer("d").output_shape == TensorShape(8, 8, 8)

    def test_duplicate_name_rejected(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.add("a", Input(TensorShape(1, 1, 1)))

    def test_unknown_input_rejected(self):
        g = Graph("g")
        with pytest.raises(GraphError):
            g.add(
                "x",
                Conv2D(out_channels=1, in_channels=1, window=Window2D.square(1)),
                ["nope"],
            )

    def test_dtype_inherited_from_input(self):
        g = Graph("g")
        g.add("in", Input(TensorShape(4, 4, 2)), dtype=DataType.INT16)
        layer = g.add(
            "c", Conv2D(out_channels=2, in_channels=2, window=Window2D.square(1)), ["in"]
        )
        assert layer.dtype is DataType.INT16


class TestQueries:
    def test_consumers_and_producers(self):
        g = small_graph()
        assert sorted(g.consumers("a")) == ["b", "c"]
        assert g.producers("d") == ["b", "c"]
        assert g.consumers("d") == []

    def test_outputs(self):
        g = small_graph()
        assert [l.name for l in g.outputs()] == ["d"]

    def test_inputs(self):
        g = small_graph()
        assert [l.name for l in g.inputs()] == ["in"]

    def test_unknown_layer_raises(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.layer("zzz")
        with pytest.raises(GraphError):
            g.consumers("zzz")

    def test_len_and_contains(self):
        g = small_graph()
        assert len(g) == 5
        assert "a" in g
        assert "zzz" not in g


class TestStatistics:
    def test_total_macs_sums_layers(self):
        g = small_graph()
        assert g.total_macs() == sum(l.macs() for l in g.layers())

    def test_weight_and_activation_bytes_positive(self):
        g = small_graph()
        assert g.total_weight_bytes() > 0
        assert g.total_activation_bytes() > 0


class TestValidation:
    def test_valid_graph_passes(self):
        small_graph().validate()

    def test_empty_graph_fails(self):
        with pytest.raises(GraphError):
            Graph("e").validate()

    def test_no_input_fails(self):
        g = Graph("g")
        # Build a graph whose only layer pretends to be non-input: not
        # constructible through add(); validate still guards inputs().
        g.add("in", Input(TensorShape(2, 2, 1)))
        g._layers.pop("in")
        g._order.remove("in")
        with pytest.raises(GraphError):
            g.validate()


class TestLayerHelpers:
    def test_input_region_concat_offsets(self):
        g = Graph("g")
        g.add("in", Input(TensorShape(4, 4, 3)))
        g.add("x", Conv2D(out_channels=5, in_channels=3, window=Window2D.square(1)), ["in"])
        g.add("cat", Concat(), ["in", "x"])
        cat = g.layer("cat")
        out = Region(Interval(0, 4), Interval(0, 4), Interval(2, 6))
        r0 = cat.input_region(out, 0)
        r1 = cat.input_region(out, 1)
        assert r0.chans == Interval(2, 3)
        assert r1.chans == Interval(0, 3)

    def test_input_region_bad_index(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.layer("b").input_region(Region.full(g.layer("b").output_shape), 5)

    def test_macs_default_full(self):
        g = small_graph()
        b = g.layer("b")
        assert b.macs() == b.macs(Region.full(b.output_shape))


class TestSubgraph:
    def test_subgraph_inserts_boundary_inputs(self):
        g = small_graph()
        sub = g.subgraph(["b", "c", "d"])
        sub.validate()
        # 'a' becomes an Input with a's output shape.
        assert sub.layer("a").is_input
        assert sub.layer("a").output_shape == g.layer("a").output_shape
        assert len(sub) == 4

    def test_subgraph_keeps_real_inputs(self):
        g = small_graph()
        sub = g.subgraph(["in", "a"])
        sub.validate()
        assert sub.layer("in").is_input
        assert not sub.layer("a").is_input

    def test_empty_selection_rejected(self):
        with pytest.raises(GraphError):
            small_graph().subgraph([])

    def test_subgraph_macs_subset(self):
        g = small_graph()
        sub = g.subgraph(["b", "c"])
        assert sub.total_macs() == g.layer("b").macs() + g.layer("c").macs()
