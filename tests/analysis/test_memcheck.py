"""SPM-budget audit of compiled models."""

import dataclasses


from repro.analysis import audit_spm, peak_spm_per_core
from repro.compiler import CompileOptions, compile_model
from repro.hw import tiny_test_machine

from tests.conftest import make_chain_graph, make_mixed_graph


def machine(spm_bytes=64 * 1024, cores=2):
    npu = tiny_test_machine(cores)
    new = tuple(dataclasses.replace(c, spm_bytes=spm_bytes) for c in npu.cores)
    return dataclasses.replace(npu, cores=new)


class TestAudit:
    def test_no_violations_on_roomy_machine(self):
        npu = machine(16 << 20)
        m = compile_model(make_mixed_graph(), npu, CompileOptions.halo())
        usages, violations = audit_spm(m)
        assert usages
        assert violations == []

    def test_usage_covers_all_active_sublayers(self):
        npu = machine()
        m = compile_model(make_chain_graph(), npu, CompileOptions.base())
        usages, _ = audit_spm(m)
        active = sum(
            1
            for name in m.schedule
            if not m.graph.layer(name).is_input
            for core in range(npu.num_cores)
            if not m.exec_regions[name][core].is_empty
        )
        assert len(usages) == active

    def test_components_nonnegative(self):
        npu = machine()
        m = compile_model(make_mixed_graph(), npu, CompileOptions.stratum_config())
        usages, _ = audit_spm(m)
        for u in usages:
            assert u.weights >= 0
            assert u.stream_buffers >= 0
            assert u.total >= 0

    def test_tolerance_scales(self):
        npu = machine(4 * 1024)
        m = compile_model(make_mixed_graph(), npu, CompileOptions.base())
        _, strict = audit_spm(m, tolerance=1.0)
        _, loose = audit_spm(m, tolerance=100.0)
        assert len(loose) <= len(strict)
        assert loose == []

    def test_violation_str(self):
        npu = machine()
        m = compile_model(make_mixed_graph(), npu, CompileOptions.base())
        usages, _ = audit_spm(m)
        from repro.verify import SpmViolation

        v = SpmViolation(usage=usages[0], capacity=1)
        assert "SPM" in str(v)

    def test_memcheck_shim_removed(self):
        # The deprecated repro.analysis.memcheck shim (absorbed into
        # repro.verify.spm in PR 2) is gone; the supported imports are
        # repro.verify (canonical) and the repro.analysis re-export.
        import importlib

        import pytest

        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.analysis.memcheck")
        from repro import analysis
        from repro.verify import spm

        assert analysis.audit_spm is spm.audit_spm

    def test_peak_per_core(self):
        npu = machine()
        m = compile_model(make_mixed_graph(), npu, CompileOptions.base())
        peaks = peak_spm_per_core(m)
        assert set(peaks) <= set(range(npu.num_cores))
        for peak in peaks.values():
            assert peak > 0

    def test_forwarding_shows_as_resident(self):
        npu = machine(16 << 20)
        m = compile_model(make_chain_graph(), npu, CompileOptions.halo())
        usages, _ = audit_spm(m)
        assert any(u.resident_inputs > 0 or u.resident_output > 0 for u in usages)

    def test_halo_shows_as_buffers(self):
        npu = machine(16 << 20)
        m = compile_model(make_chain_graph(), npu, CompileOptions.halo())
        usages, _ = audit_spm(m)
        assert any(u.halo_buffers > 0 for u in usages)
