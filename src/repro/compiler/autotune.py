"""Design-space exploration over the compiler's per-layer knobs.

The paper's compiler fixes every scheduling decision with heuristics:
h1-h5 pick each layer's partition direction, the tiler targets a fixed
pipeline depth, and h6-h8 decide stratum membership analytically.
Stream-style DSE (see PAPERS.md) searches exactly this space instead --
and with the repo's infrastructure the search is both *cheap* and
*safe*:

* cheap -- compilation is memoized by content fingerprint
  (:class:`~repro.compiler.cache.ProgramCache`) and simulation by
  :class:`~repro.sim.memo.SimMemo`, so revisited candidates cost a hash
  lookup, and two option sets that lower to the same program share one
  simulation;
* safe -- every candidate is statically checked by :mod:`repro.verify`
  before it may be simulated, so an aggressive search cannot crown a
  broken schedule;
* pruned soundly -- the analytic lower bound of
  :mod:`repro.verify.bounds` (``lb <= sim``) discards candidates that
  provably cannot beat the incumbent *before* paying for a simulation,
  mirroring the decision-preserving pre-screen of the serving
  dynamic policy: since the winner only updates on strict improvement,
  a candidate with ``lb >= best`` can never be the winner.

A *candidate* is simply a :class:`~repro.compiler.options.CompileOptions`
value: the base configuration plus per-layer ``direction_overrides``,
``tile_overrides`` and ``stratum_blocks`` pins.  Candidates are hashable
and content-fingerprinted, so the search, the compile cache and the
simulation memo all agree on identity.

Search strategies are pluggable through the small
:class:`SearchStrategy` protocol; shipped strategies are ``grid`` (a
fixed single-knob sweep -- the decision-preservation reference),
``beam`` (mutation beam search), ``anneal`` (simulated-annealing
refinement) and the default ``beam+anneal`` pipeline.  Everything is
deterministic per ``seed``: the proposal stream comes from a seeded
``random.Random``, all tie-breaks are lexicographic, and the fitness of
a candidate is its simulated makespan at that same seed.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.compiler.cache import ProgramCache, options_fingerprint
from repro.compiler.compiler import CompiledModel
from repro.compiler.options import CompileOptions
from repro.hw.config import NPUConfig
from repro.ir.graph import Graph
from repro.partition.direction import PartitionDirection
from repro.partition.heuristics import channel_feasible, spatial_feasible
from repro.sim.memo import SimMemo

#: Sentinel knob value meaning "keep the heuristic decision".
AUTO = "auto"

#: Pipeline-depth choices of the tile knob (besides ``AUTO``).
TILE_CHOICES: Tuple[int, ...] = (1, 2, 8)


# --------------------------------------------------------------- search space


@dataclasses.dataclass(frozen=True)
class Knob:
    """One searchable decision: a layer axis plus its legal values.

    ``choices`` never contains the heuristic default (``AUTO`` / an
    unblocked stratum layer): setting a knob back to its default is
    expressed by *removing* the override, so the all-defaults candidate
    is exactly the h1-h8 baseline.
    """

    kind: str  # 'direction' | 'tile' | 'stratum'
    layer: str
    choices: Tuple[object, ...]


@dataclasses.dataclass(frozen=True)
class SearchSpace:
    """The knob grid of one (model, machine, base configuration) triple."""

    model: str
    base: CompileOptions
    knobs: Tuple[Knob, ...]

    @property
    def num_points(self) -> float:
        """Size of the full grid (every knob independently set)."""
        points = 1.0
        for knob in self.knobs:
            points *= len(knob.choices) + 1  # +1: the AUTO default
        return points

    # ------------------------------------------------------ candidate algebra

    def knob_value(self, options: CompileOptions, knob: Knob) -> object:
        """The knob's current value in ``options`` (or ``AUTO``)."""
        if knob.kind == "direction":
            return dict(options.direction_overrides).get(knob.layer, AUTO)
        if knob.kind == "tile":
            return dict(options.tile_overrides).get(knob.layer, AUTO)
        if knob.kind == "stratum":
            return knob.layer in options.stratum_blocks
        raise ValueError(f"unknown knob kind {knob.kind!r}")

    def set_knob(
        self, options: CompileOptions, knob: Knob, value: object
    ) -> CompileOptions:
        """``options`` with one knob changed (``AUTO``/False removes it)."""
        if knob.kind == "direction":
            pins = dict(options.direction_overrides)
            if value == AUTO:
                pins.pop(knob.layer, None)
            else:
                pins[knob.layer] = str(value)
            return dataclasses.replace(
                options, direction_overrides=tuple(pins.items())
            )
        if knob.kind == "tile":
            tiles = dict(options.tile_overrides)
            if value == AUTO:
                tiles.pop(knob.layer, None)
            else:
                tiles[knob.layer] = int(value)  # type: ignore[call-overload]
            return dataclasses.replace(options, tile_overrides=tuple(tiles.items()))
        if knob.kind == "stratum":
            blocks = set(options.stratum_blocks)
            if value:
                blocks.add(knob.layer)
            else:
                blocks.discard(knob.layer)
            return dataclasses.replace(options, stratum_blocks=tuple(blocks))
        raise ValueError(f"unknown knob kind {knob.kind!r}")

    def mutate(
        self, options: CompileOptions, rng: random.Random
    ) -> CompileOptions:
        """One random knob moved to a random *different* value.

        The reverse move (back to ``AUTO`` / unblocked) is always in the
        value set, so the walk can undo any pin it made.
        """
        knob = self.knobs[rng.randrange(len(self.knobs))]
        current = self.knob_value(options, knob)
        if knob.kind == "stratum":
            return self.set_knob(options, knob, not current)
        values = [AUTO, *knob.choices]
        values = [v for v in values if v != current]
        return self.set_knob(options, knob, values[rng.randrange(len(values))])


def build_space(
    graph: Graph,
    npu: NPUConfig,
    options: CompileOptions,
    baseline: CompiledModel,
    tile_choices: Sequence[int] = TILE_CHOICES,
) -> SearchSpace:
    """Enumerate the knob grid around the heuristic compile.

    * direction knobs: every layer with at least one *feasible*
      alternative to the heuristic choice (``spatial`` / ``channel``
      filtered by op support and alignment; ``none`` -- whole layer on
      the fastest core -- is always feasible);
    * tile knobs: every layer that computes (pipeline depth 1, 2 or 8
      against the tiler's fixed default of 4-when-beneficial);
    * stratum knobs: each layer of a baseline stratum may be blocked
      (only meaningful under ``options.stratum``; blocking a layer that
      h6-h8 never fused would be dead weight in the space).
    """
    knobs: List[Knob] = []
    multicore = (
        npu.num_cores > 1 and not options.is_single_core
    )
    for layer in graph.layers():
        if layer.is_input:
            continue
        if multicore:
            current = baseline.partition.direction(layer.name)
            alternatives: List[object] = []
            for direction, feasible in (
                (PartitionDirection.SPATIAL, spatial_feasible(layer, npu)),
                (PartitionDirection.CHANNEL, channel_feasible(layer, npu)),
                (PartitionDirection.NONE, True),
            ):
                if feasible and direction is not current:
                    alternatives.append(direction.value)
            if alternatives:
                knobs.append(Knob("direction", layer.name, tuple(alternatives)))
        if layer.macs(None) > 0 or layer.op.weight_elements() > 0:
            knobs.append(Knob("tile", layer.name, tuple(tile_choices)))
    if options.stratum:
        for name in sorted(baseline.strata.membership):
            knobs.append(Knob("stratum", name, (True,)))
    return SearchSpace(model=graph.name, base=options, knobs=tuple(knobs))


# ------------------------------------------------------------------ evaluator


class BudgetExhausted(Exception):
    """Raised by :meth:`Evaluator.evaluate` when the budget is spent."""


@dataclasses.dataclass
class EvalRecord:
    """One evaluated candidate, in evaluation order."""

    index: int
    fingerprint: str
    status: str  # 'ok' | 'verify-reject' | 'pruned' | 'compile-error'
    latency_us: Optional[float]
    lower_bound_us: Optional[float]
    best_us: Optional[float]
    num_overrides: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "fingerprint": self.fingerprint[:12],
            "status": self.status,
            "latency_us": self.latency_us,
            "lower_bound_us": self.lower_bound_us,
            "best_us": self.best_us,
            "num_overrides": self.num_overrides,
        }


class Evaluator:
    """Fitness function: compile -> verify -> bound-prune -> simulate.

    Budget accounting: each *distinct* candidate that reaches the
    pipeline consumes one evaluation, whatever its fate (verify-reject,
    bound-prune, simulation).  Re-evaluating a candidate the search has
    already seen is served from a local table and is free -- that is the
    memoized-DSE regime the memo layer exists for.  ``evaluate`` raises
    :class:`BudgetExhausted` once ``budget`` fresh candidates were paid
    for.
    """

    def __init__(
        self,
        graph: Graph,
        npu: NPUConfig,
        budget: int,
        seed: int,
        cache: Optional[ProgramCache] = None,
        memo: Optional[SimMemo] = None,
        prune: bool = True,
        verify_passes: Optional[Sequence[str]] = None,
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be at least 1")
        self.graph = graph
        self.npu = npu
        self.budget = budget
        self.seed = seed
        self.cache = cache if cache is not None else ProgramCache(
            max_entries=max(64, budget + 8)
        )
        self.memo = memo if memo is not None else SimMemo(
            max_entries=max(64, budget + 8), store_on_first_miss=True
        )
        self.prune = prune
        self.verify_passes = tuple(verify_passes) if verify_passes else None
        self.trajectory: List[EvalRecord] = []
        self._table: Dict[str, Optional[float]] = {}
        self.best_options: Optional[CompileOptions] = None
        self.best_latency_us: Optional[float] = None
        self.best_fingerprint: Optional[str] = None
        self.evaluations = 0
        self.simulations = 0
        self.verify_rejects = 0
        self.bound_prunes = 0
        self.compile_errors = 0
        self.repeat_hits = 0

    # ------------------------------------------------------------- pipeline

    def evaluate(self, options: CompileOptions) -> Optional[float]:
        """Fitness of one candidate; ``None`` when rejected or pruned."""
        fingerprint = options_fingerprint(options)
        if fingerprint in self._table:
            self.repeat_hits += 1
            return self._table[fingerprint]
        if self.evaluations >= self.budget:
            raise BudgetExhausted(
                f"{self.evaluations} evaluations spent of {self.budget}"
            )
        self.evaluations += 1
        index = self.evaluations
        num_overrides = (
            len(options.direction_overrides)
            + len(options.tile_overrides)
            + len(options.stratum_blocks)
        )

        def record(
            status: str,
            latency: Optional[float] = None,
            lb: Optional[float] = None,
        ) -> Optional[float]:
            self._table[fingerprint] = latency
            self.trajectory.append(
                EvalRecord(
                    index=index,
                    fingerprint=fingerprint,
                    status=status,
                    latency_us=latency,
                    lower_bound_us=lb,
                    best_us=self.best_latency_us,
                    num_overrides=num_overrides,
                )
            )
            return latency

        try:
            compiled = self.cache.compile(self.graph, self.npu, options)
        except ValueError:
            # A pin drove the lowering somewhere infeasible (e.g. banding
            # cannot split); the candidate simply leaves the space.
            self.compile_errors += 1
            return record("compile-error")

        # Gate: no candidate is simulated -- let alone crowned -- unless
        # the static verifier accepts its command stream.
        from repro.verify import verify_model

        report = verify_model(compiled, passes=self.verify_passes)
        if not report.ok:
            self.verify_rejects += 1
            return record("verify-reject")

        # Sound prune: lb <= any simulated makespan, and the winner only
        # updates on *strict* improvement, so lb >= best implies this
        # candidate cannot become the winner.  Decision-preserving by
        # the same argument as the dynamic policy's wave pre-screen.
        from repro.verify.bounds import bounds_for

        bounds = bounds_for(compiled.program, self.npu)
        lb_us = bounds.lower_bound_us
        if (
            self.prune
            and self.best_latency_us is not None
            and lb_us >= self.best_latency_us
        ):
            self.bound_prunes += 1
            return record("pruned", lb=lb_us)

        from repro.sim import simulate

        result = simulate(
            compiled.program, self.npu, seed=self.seed, memo=self.memo
        )
        self.simulations += 1
        latency_us = self.npu.cycles_to_us(result.makespan_cycles)
        if self.best_latency_us is None or latency_us < self.best_latency_us:
            self.best_options = options
            self.best_latency_us = latency_us
            self.best_fingerprint = fingerprint
        return record("ok", latency=latency_us, lb=lb_us)

    @property
    def exhausted(self) -> bool:
        return self.evaluations >= self.budget


# ------------------------------------------------------------------ strategies


class SearchStrategy(Protocol):
    """A search procedure over one knob space.

    Implementations call ``evaluator.evaluate(candidate)`` at will and
    return when they are done; :class:`BudgetExhausted` is caught by the
    driver, so running straight into the budget is a normal way to
    finish.  All randomness must come from ``rng`` (determinism per
    seed) and all iteration orders must be stable.
    """

    name: str

    def search(
        self, space: SearchSpace, evaluator: Evaluator, rng: random.Random
    ) -> None: ...  # pragma: no cover - protocol


class GridStrategy:
    """Fixed single-knob sweep: every knob, every value, one at a time.

    The proposal list depends only on the space -- never on observed
    fitness -- which makes this the reference strategy for the
    decision-preservation property of bound pruning: with pruning on or
    off, the same candidates are proposed and the same winner is
    crowned.
    """

    name = "grid"

    def search(
        self, space: SearchSpace, evaluator: Evaluator, rng: random.Random
    ) -> None:
        for knob in space.knobs:
            values: Tuple[object, ...] = (
                (True,) if knob.kind == "stratum" else knob.choices
            )
            for value in values:
                evaluator.evaluate(space.set_knob(space.base, knob, value))


class BeamStrategy:
    """Mutation beam search from the heuristic baseline.

    Keeps the ``width`` best simulated candidates; each round proposes
    ``branch`` single-knob mutations of every beam member, re-ranks and
    stops after ``patience`` rounds without improvement.  Combinations
    of single-knob wins emerge as mutations stack across rounds.
    """

    name = "beam"

    def __init__(
        self, width: int = 4, branch: int = 6, patience: int = 3
    ) -> None:
        self.width = width
        self.branch = branch
        self.patience = patience

    def search(
        self, space: SearchSpace, evaluator: Evaluator, rng: random.Random
    ) -> None:
        assert evaluator.best_latency_us is not None, "baseline must be seeded"
        beam: List[Tuple[float, str, CompileOptions]] = [
            (evaluator.best_latency_us, "", space.base)
        ]
        stale = 0
        while stale < self.patience and not evaluator.exhausted:
            best_before = evaluator.best_latency_us
            pool = dict((fp, (lat, opt)) for lat, fp, opt in beam)
            for _, _, member in list(beam):
                for _ in range(self.branch):
                    candidate = space.mutate(member, rng)
                    latency = evaluator.evaluate(candidate)
                    if latency is not None:
                        pool[options_fingerprint(candidate)] = (latency, candidate)
            ranked = sorted(
                (lat, fp, opt) for fp, (lat, opt) in pool.items()
            )
            beam = ranked[: self.width]
            stale = 0 if evaluator.best_latency_us < best_before else stale + 1


class AnnealStrategy:
    """Simulated-annealing refinement around the incumbent.

    Starts from the best candidate found so far (the baseline when run
    alone), walks single-knob mutations, always accepts improvements
    and accepts regressions with probability ``exp(-delta/T)``; ``T``
    starts at ``temperature`` times the baseline latency and cools
    geometrically per proposal.  Rejected/pruned candidates never enter
    the walk.
    """

    name = "anneal"

    def __init__(
        self,
        temperature: float = 0.02,
        cooling: float = 0.97,
        proposals: Optional[int] = None,
    ) -> None:
        self.temperature = temperature
        self.cooling = cooling
        self.proposals = proposals

    def search(
        self, space: SearchSpace, evaluator: Evaluator, rng: random.Random
    ) -> None:
        assert evaluator.best_latency_us is not None, "baseline must be seeded"
        current = (
            evaluator.best_options
            if evaluator.best_options is not None
            else space.base
        )
        current_latency = evaluator.best_latency_us
        temp = self.temperature * current_latency
        remaining = (
            self.proposals
            if self.proposals is not None
            else max(0, evaluator.budget - evaluator.evaluations)
        )
        for _ in range(remaining):
            if evaluator.exhausted:
                break
            candidate = space.mutate(current, rng)
            latency = evaluator.evaluate(candidate)
            if latency is not None:
                delta = latency - current_latency
                if delta < 0 or (
                    temp > 0 and rng.random() < math.exp(-delta / temp)
                ):
                    current, current_latency = candidate, latency
            temp *= self.cooling


class BeamAnnealStrategy:
    """The default pipeline: beam search, then annealing refinement.

    The beam spends ``beam_fraction`` of the budget mapping the space's
    coarse structure; annealing then perturbs the incumbent with the
    rest, escaping the beam's greedy ranking.
    """

    name = "beam+anneal"

    def __init__(self, beam_fraction: float = 0.65) -> None:
        if not 0.0 < beam_fraction < 1.0:
            raise ValueError("beam_fraction must be in (0, 1)")
        self.beam_fraction = beam_fraction

    def search(
        self, space: SearchSpace, evaluator: Evaluator, rng: random.Random
    ) -> None:
        beam_budget = max(1, int(evaluator.budget * self.beam_fraction))
        try:
            # Cap the beam phase by masquerading a smaller budget; the
            # evaluator's counters are global so the cap composes.
            real_budget = evaluator.budget
            evaluator.budget = min(real_budget, beam_budget)
            BeamStrategy().search(space, evaluator, rng)
        except BudgetExhausted:
            pass
        finally:
            evaluator.budget = real_budget
        AnnealStrategy().search(space, evaluator, rng)


#: Registered strategies for the CLI / bench (name -> factory).
STRATEGIES: Dict[str, Callable[[], SearchStrategy]] = {
    "grid": GridStrategy,
    "beam": BeamStrategy,
    "anneal": AnnealStrategy,
    "beam+anneal": BeamAnnealStrategy,
}


# --------------------------------------------------------------------- report


@dataclasses.dataclass
class AutotuneReport:
    """Everything one autotune run decided and measured."""

    model: str
    machine: str
    config: str
    strategy: str
    seed: int
    budget: int
    num_knobs: int
    baseline_latency_us: float
    best_latency_us: float
    baseline_fingerprint: str
    best_fingerprint: str
    evaluations: int
    simulations: int
    verify_rejects: int
    bound_prunes: int
    compile_errors: int
    repeat_hits: int
    memo_hits: int
    memo_misses: int
    cache_hits: int
    cache_misses: int
    trajectory: List[EvalRecord]
    best_overrides: Dict[str, object]
    #: live objects for downstream consumers (CLI diff, tests); not
    #: serialized.
    base_options: CompileOptions = dataclasses.field(repr=False)
    best_options: CompileOptions = dataclasses.field(repr=False)

    @property
    def speedup(self) -> float:
        """Baseline / winner latency; >= 1.0 by construction."""
        if self.best_latency_us <= 0.0:
            return 1.0
        return self.baseline_latency_us / self.best_latency_us

    @property
    def improved(self) -> bool:
        """True when the winner strictly beats the h1-h8 baseline."""
        return self.best_latency_us < self.baseline_latency_us

    @property
    def memo_hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    def to_dict(self, include_trajectory: bool = True) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "model": self.model,
            "machine": self.machine,
            "config": self.config,
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "num_knobs": self.num_knobs,
            "baseline_latency_us": self.baseline_latency_us,
            "best_latency_us": self.best_latency_us,
            "speedup": self.speedup,
            "improved": self.improved,
            "baseline_fingerprint": self.baseline_fingerprint[:12],
            "best_fingerprint": self.best_fingerprint[:12],
            "evaluations": self.evaluations,
            "simulations": self.simulations,
            "verify_rejects": self.verify_rejects,
            "bound_prunes": self.bound_prunes,
            "compile_errors": self.compile_errors,
            "repeat_hits": self.repeat_hits,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_hit_rate": self.memo_hit_rate,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "best_overrides": self.best_overrides,
        }
        if include_trajectory:
            payload["trajectory"] = [r.to_dict() for r in self.trajectory]
        return payload


def _overrides_summary(options: CompileOptions) -> Dict[str, object]:
    return {
        "directions": dict(options.direction_overrides),
        "tiles": dict(options.tile_overrides),
        "stratum_blocks": list(options.stratum_blocks),
    }


# --------------------------------------------------------------------- driver


def autotune(
    graph: Graph,
    npu: NPUConfig,
    options: Optional[CompileOptions] = None,
    strategy: str | SearchStrategy = "beam+anneal",
    budget: int = 64,
    seed: int = 0,
    cache: Optional[ProgramCache] = None,
    memo: Optional[SimMemo] = None,
    prune: bool = True,
    verify_passes: Optional[Sequence[str]] = None,
    tile_choices: Sequence[int] = TILE_CHOICES,
) -> AutotuneReport:
    """Search the per-layer knob space of ``graph`` on ``npu``.

    ``options`` is the base configuration the space is built around (the
    paper's +Stratum by default); the heuristic compile of exactly these
    options is evaluation #1 and the incumbent the search must strictly
    beat.  ``budget`` caps distinct candidate evaluations, ``seed``
    drives both the proposal stream and the simulator jitter, and the
    whole run is bit-reproducible per seed.

    ``strategy`` is a name from :data:`STRATEGIES` or any object
    implementing :class:`SearchStrategy`.  ``prune=False`` disables the
    lower-bound pre-screen (used by the decision-preservation tests).
    """
    options = options or CompileOptions.stratum_config()
    if options.is_single_core:
        raise ValueError("autotune needs a multi-core configuration to search")
    if isinstance(strategy, str):
        try:
            search = STRATEGIES[strategy]()
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; known: {sorted(STRATEGIES)}"
            ) from None
    else:
        search = strategy

    evaluator = Evaluator(
        graph,
        npu,
        budget=budget,
        seed=seed,
        cache=cache,
        memo=memo,
        prune=prune,
        verify_passes=verify_passes,
    )
    # Evaluation #1: the h1-h8 baseline itself.  It must verify cleanly
    # (the zoo does) and becomes the incumbent every candidate races.
    baseline_latency = evaluator.evaluate(options)
    if baseline_latency is None:
        raise ValueError(
            f"baseline configuration {options.label!r} failed verification; "
            "nothing to search against"
        )
    baseline_compiled = evaluator.cache.compile(graph, npu, options)
    space = build_space(
        graph, npu, options, baseline_compiled, tile_choices=tile_choices
    )

    rng = random.Random(seed)
    try:
        search.search(space, evaluator, rng)
    except BudgetExhausted:
        pass

    assert evaluator.best_options is not None  # the baseline seeded it
    assert evaluator.best_latency_us is not None
    assert evaluator.best_fingerprint is not None
    return AutotuneReport(
        model=graph.name,
        machine=npu.name,
        config=options.label,
        strategy=getattr(search, "name", type(search).__name__),
        seed=seed,
        budget=budget,
        num_knobs=len(space.knobs),
        baseline_latency_us=baseline_latency,
        best_latency_us=evaluator.best_latency_us,
        baseline_fingerprint=options_fingerprint(options),
        best_fingerprint=evaluator.best_fingerprint,
        evaluations=evaluator.evaluations,
        simulations=evaluator.simulations,
        verify_rejects=evaluator.verify_rejects,
        bound_prunes=evaluator.bound_prunes,
        compile_errors=evaluator.compile_errors,
        repeat_hits=evaluator.repeat_hits,
        memo_hits=evaluator.memo.hits,
        memo_misses=evaluator.memo.misses,
        cache_hits=evaluator.cache.hits,
        cache_misses=evaluator.cache.misses,
        trajectory=evaluator.trajectory,
        best_overrides=_overrides_summary(evaluator.best_options),
        base_options=options,
        best_options=evaluator.best_options,
    )
