"""Algorithm 1: the hybrid depth-first / sibling layer schedule."""

import pytest

from repro.hw import tiny_test_machine
from repro.partition import PartitionPolicy, partition_graph
from repro.schedule import schedule_layers

from tests.conftest import make_branchy_graph, make_chain_graph, make_mixed_graph


@pytest.fixture
def npu():
    return tiny_test_machine(3)


def assert_topological(graph, order):
    pos = {name: i for i, name in enumerate(order)}
    for layer in graph.layers():
        for src in layer.inputs:
            assert pos[src] < pos[layer.name], f"{src} must precede {layer.name}"


class TestBasicProperties:
    def test_covers_graph_exactly_once(self, npu):
        g = make_mixed_graph()
        order = schedule_layers(g, partition_graph(g, npu))
        assert sorted(order) == sorted(g.topological_order())

    def test_topological(self, npu):
        for make in (make_chain_graph, make_mixed_graph, make_branchy_graph):
            g = make()
            order = schedule_layers(g, partition_graph(g, npu))
            assert_topological(g, order)

    def test_chain_keeps_order(self, npu):
        g = make_chain_graph()
        order = schedule_layers(g, partition_graph(g, npu))
        assert order == ["in", "c1", "c2", "c3"]


class TestSuccessorPreference:
    def test_spatial_layer_followed_by_its_consumer(self, npu):
        """After a spatially partitioned layer with a ready consumer, the
        consumer is scheduled next (data-reuse preference)."""
        g = make_branchy_graph()
        gp = partition_graph(g, npu)
        order = schedule_layers(g, gp)
        pos = {n: i for i, n in enumerate(order)}
        # b2a -> b2b -> b2c is a spatial chain: must be contiguous.
        assert pos["b2b"] == pos["b2a"] + 1
        assert pos["b2c"] == pos["b2b"] + 1

    def test_single_core_schedule_valid(self):
        npu1 = tiny_test_machine(1)
        g = make_branchy_graph()
        order = schedule_layers(g, partition_graph(g, npu1, PartitionPolicy.SINGLE_CORE))
        assert_topological(g, order)


class TestSiblingPreference:
    def test_channel_layer_defers_consumer(self, npu):
        """A channel-partitioned layer prefers an independent sibling next,
        widening the span between synchronization points."""
        g = make_mixed_graph()
        gp = partition_graph(g, npu)
        order = schedule_layers(g, gp)
        assert_topological(g, order)  # property holds regardless of choice


class TestModelsSchedulable:
    def test_zoo_models_schedule(self, npu):
        from repro.models import get_model

        for name in ("MobileNetV2",):
            g = get_model(name)
            order = schedule_layers(g, partition_graph(g, npu))
            assert_topological(g, order)
            assert len(order) == len(g)
