"""Compilation option presets (Table 3 configurations)."""

from repro.compiler import CompileOptions
from repro.partition import PartitionPolicy


class TestPresets:
    def test_base(self):
        o = CompileOptions.base()
        assert not o.halo_exchange
        assert not o.stratum
        assert not o.feature_map_forwarding
        assert o.label == "Base"

    def test_halo_is_cumulative(self):
        o = CompileOptions.halo()
        assert o.halo_exchange and o.halo_first
        assert o.feature_map_forwarding
        assert not o.stratum
        assert o.label == "+Halo"

    def test_stratum_is_cumulative(self):
        o = CompileOptions.stratum_config()
        assert o.halo_exchange and o.halo_first and o.stratum
        assert o.label == "+Stratum"

    def test_stratum_only(self):
        o = CompileOptions.stratum_only()
        assert o.stratum and not o.halo_exchange
        assert o.label == "+Stratum-only"

    def test_single_core(self):
        o = CompileOptions.single_core()
        assert o.partition_policy is PartitionPolicy.SINGLE_CORE
        assert o.label == "1-core"

    def test_is_single_core_predicate(self):
        assert CompileOptions.single_core().is_single_core
        for o in (
            CompileOptions.base(),
            CompileOptions.halo(),
            CompileOptions.stratum_config(),
        ):
            assert not o.is_single_core

    def test_is_single_core_is_structural_not_label(self):
        """Regression: runners used to dispatch on ``label == "1-core"``,
        so a relabelled single-core configuration ran on the full
        machine.  The predicate must follow the partition policy."""

        class Relabelled(CompileOptions):
            @property
            def label(self):  # type: ignore[override]
                return "my-baseline"

        o = Relabelled(partition_policy=PartitionPolicy.SINGLE_CORE)
        assert o.label == "my-baseline"
        assert o.is_single_core

    def test_forwarding_toggles(self):
        o = CompileOptions.halo().without_forwarding()
        assert not o.feature_map_forwarding
        assert o.with_forwarding().feature_map_forwarding

    def test_policy_passthrough(self):
        o = CompileOptions.base(policy=PartitionPolicy.CHANNEL_ONLY)
        assert o.partition_policy is PartitionPolicy.CHANNEL_ONLY

    def test_frozen(self):
        import dataclasses

        o = CompileOptions.base()
        try:
            o.stratum = True  # type: ignore[misc]
            raised = False
        except dataclasses.FrozenInstanceError:
            raised = True
        assert raised
