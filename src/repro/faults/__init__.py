"""Fault injection and degraded-mode execution for the NPU simulator.

The clean simulator assumes three cores that never slow down or drop
out; real mobile SoCs share a thermal and power envelope with the rest
of the chip, so the NPU throttles, stalls, and occasionally loses a
core to driver resets.  This package injects exactly those three
regimes into the event-driven simulator, deterministically:

* :class:`ThermalThrottle` -- per-core DVFS frequency stepping driven by
  a heat accumulator over busy cycles;
* :class:`TransientStall` -- seeded stall windows on a core or the bus;
* :class:`CoreOffline` -- a core dies at time t, abandoning every
  in-flight command stream that depends on it.

A :class:`FaultPlan` bundles fault events and rides into
:func:`repro.sim.simulator.simulate` via its ``faults`` argument; an
empty plan is a guaranteed no-op (the clean scheduler runs untouched,
bit-identically).  :class:`FaultInjector` carries thermal and liveness
state across the waves of a serving run (:mod:`repro.serve.degraded`).
"""

from repro.faults.plan import (
    CoreOffline,
    FaultEvent,
    FaultPlan,
    FaultStats,
    ThermalThrottle,
    TransientStall,
    device_offline_plan,
    random_stalls,
)
from repro.faults.session import FaultInjector
from repro.faults.spec import parse_fault_spec

__all__ = [
    "CoreOffline",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "ThermalThrottle",
    "TransientStall",
    "device_offline_plan",
    "parse_fault_spec",
    "random_stalls",
]
