"""Simulation-trace cross-checks (RPR6xx).

The static passes prove properties of the *program*; this module closes
the loop on the *simulator*: a trace claiming an execution order that
violates the program's dependencies or engine-queue semantics means the
latency numbers downstream are fiction.  Checked invariants:

* ``RPR601`` -- an event starts before one of its dependencies ends
* ``RPR602`` -- two events of one engine queue overlap, or run out of
  program order
* ``RPR603`` -- the trace is not a bijection with the program (missing
  or duplicated commands)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compiler.program import Engine, Program
from repro.sim.trace import Trace
from repro.verify.diagnostics import PassResult

#: Slack for float accumulation in the event times.
_EPS = 1e-6


def check_trace(program: Program, trace: Trace) -> PassResult:
    """Cross-check one simulated trace against its program."""
    result = PassResult(name="trace")
    by_cid = {}
    for event in trace.events:
        if event.cid in by_cid:
            result.emit(
                "RPR603",
                f"command #{event.cid} appears twice in the trace",
                layer=event.layer,
                core=event.core,
                cid=event.cid,
            )
        by_cid[event.cid] = event

    for cmd in program.commands:
        if cmd.cid not in by_cid:
            result.emit(
                "RPR603",
                f"command #{cmd.cid} never executed",
                layer=cmd.layer,
                core=cmd.core,
                cid=cmd.cid,
                hint="the scheduler dropped a command; the makespan is "
                "meaningless",
            )
    if len(by_cid) > len(program.commands):
        extras = set(by_cid) - {c.cid for c in program.commands}
        for cid in sorted(extras):
            result.emit(
                "RPR603",
                f"trace event #{cid} does not correspond to any command",
                cid=cid,
            )

    # Dependencies: an event may start only after its deps completed.
    dep_checks = 0
    for cmd in program.commands:
        event = by_cid.get(cmd.cid)
        if event is None:
            continue
        for dep in cmd.deps:
            dep_event = by_cid.get(dep)
            if dep_event is None:
                continue
            dep_checks += 1
            if event.start < dep_event.end - _EPS:
                result.emit(
                    "RPR601",
                    f"command #{cmd.cid} started at {event.start:.1f} before "
                    f"dependency #{dep} finished at {dep_event.end:.1f}",
                    layer=cmd.layer,
                    core=cmd.core,
                    cid=cmd.cid,
                    hint="the scheduler dispatched a command whose "
                    "dependency count had not reached zero",
                )

    # Engine queues: serialized, in program order.
    queues: Dict[Tuple[int, Engine], List] = {}
    order: Dict[Tuple[int, Engine], List[int]] = {}
    for cmd in program.commands:
        order.setdefault((cmd.core, cmd.engine), []).append(cmd.cid)
        event = by_cid.get(cmd.cid)
        if event is not None:
            queues.setdefault((cmd.core, cmd.engine), []).append(event)
    for key, events in queues.items():
        for prev, nxt in zip(events, events[1:]):
            if nxt.start < prev.end - _EPS:
                result.emit(
                    "RPR602",
                    f"commands #{prev.cid} and #{nxt.cid} overlap on "
                    f"core {key[0]} engine {key[1].value} "
                    f"([{prev.start:.1f},{prev.end:.1f}] vs "
                    f"[{nxt.start:.1f},{nxt.end:.1f}])",
                    layer=nxt.layer,
                    core=key[0],
                    cid=nxt.cid,
                    hint="hardware queues process one command at a time, "
                    "in program order",
                )

    result.stats["events"] = len(trace.events)
    result.stats["dependency_checks"] = dep_checks
    return result
