"""Rendering for fault-injection and degraded-mode serving results.

The serving renderer (:mod:`repro.analysis.serving`) compares policies
on a clean machine; this module adds the degradation view: what one
fault plan did to the workload (retries, sheds, throttling, dead
cores), and how a faulted run compares to its clean twin.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.serve.metrics import ServeReport


def degradation_rows(reports: Sequence[ServeReport]) -> List[List[str]]:
    """One row per degraded report (clean reports show dashes)."""
    rows: List[List[str]] = []
    for r in reports:
        d = r.degraded
        if d is None:
            rows.append([r.policy, "-", "-", "-", "-", "-", "-", "-"])
            continue
        rows.append(
            [
                r.policy,
                str(len(r.results)),
                str(d.num_shed),
                f"{d.shed_rate:.1%}",
                str(d.num_retries),
                str(d.num_failed_waves),
                ",".join(map(str, d.dead_cores)) if d.dead_cores else "-",
                f"{d.throttled_fraction:.1%}",
            ]
        )
    return rows


def render_degradation_table(reports: Sequence[ServeReport]) -> str:
    """A per-policy degradation table for one faulted workload."""
    if not reports:
        raise ValueError("no serving reports to render")
    degraded = next((r.degraded for r in reports if r.degraded is not None), None)
    title = "degradation: " + (degraded.faults if degraded else "none")
    return format_table(
        [
            "Policy", "Served", "Shed", "Shed rate", "Retries",
            "Failed waves", "Dead cores", "Throttled",
        ],
        degradation_rows(reports),
        title=title,
    )


def degradation_summary(
    faulted: Sequence[ServeReport],
    clean: Optional[Sequence[ServeReport]] = None,
) -> Dict:
    """JSON-ready fault summary, optionally against a clean baseline.

    Per policy: the degradation section plus the headline latency/SLO
    deltas (``p99_vs_clean`` is faulted p99 / clean p99).
    """
    out: Dict = {"policies": {}}
    clean_by = {r.policy: r for r in clean} if clean else {}
    for r in faulted:
        entry: Dict = {
            "p99_us": r.p99_us,
            "slo_miss_rate": r.slo_miss_rate,
            "served": len(r.results),
        }
        if r.degraded is not None:
            entry["degraded"] = r.degraded.to_dict()
        base = clean_by.get(r.policy)
        if base is not None:
            entry["clean_p99_us"] = base.p99_us
            entry["clean_slo_miss_rate"] = base.slo_miss_rate
            if base.p99_us and r.p99_us is not None:
                entry["p99_vs_clean"] = r.p99_us / base.p99_us
        out["policies"][r.policy] = entry
    return out
