"""Profile-guided rebalancing ablation (Section 3.1.3).

The paper notes that independently compiled sub-layers "may incur
unbalanced workload across multicores and unnecessary idle time ...
profiling execution assists to detect unwanted idle times and fix the
unbalance."  This bench measures what that feedback loop recovers on the
zoo models.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.compiler import CompileOptions, profile_guided_rebalance
from repro.models import ZOO

from benchmarks.conftest import emit

MODELS = ["InceptionV3", "MobileNetV2", "MobileDet-SSD", "DeepLabV3+"]

_reports = {}


def _rebalance(npu, model: str):
    if model not in _reports:
        info = next(m for m in ZOO if m.name == model)
        _, _, report = profile_guided_rebalance(
            info.factory(), npu, CompileOptions.stratum_config(), max_iterations=3
        )
        _reports[model] = report
    return _reports[model]


@pytest.mark.parametrize("model", MODELS)
def test_rebalance_model(benchmark, npu, model):
    report = benchmark.pedantic(lambda: _rebalance(npu, model), rounds=1, iterations=1)
    benchmark.extra_info["initial_us"] = round(report.initial_latency_us, 1)
    benchmark.extra_info["final_us"] = round(report.final_latency_us, 1)
    benchmark.extra_info["improvement"] = round(report.improvement, 4)


def test_rebalance_report(benchmark, npu, out_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for model in MODELS:
        r = _rebalance(npu, model)
        rows.append(
            [
                model,
                f"{r.initial_latency_us:,.1f}us",
                f"{r.final_latency_us:,.1f}us",
                f"{r.improvement:.3f}x",
                r.adjusted_layers,
                r.iterations_run,
            ]
        )
    table = format_table(
        ["Model", "Analytical", "Rebalanced", "Gain", "Layers adjusted", "Iterations"],
        rows,
        title="Profile-guided rebalancing on the +Stratum stack",
    )
    emit(out_dir, "rebalancing.txt", table)
    # never a regression, by construction.
    for model in MODELS:
        assert _rebalance(npu, model).improvement >= 1.0
