"""Soundness and tightness of the static latency brackets (RPR7xx).

The bracket's whole value is the *sound* claim lb <= makespan <= ub for
every seed; these tests pin it over the zoo x the four paper
configurations x three seeds -- against both the flat-array production
core and the retained object-based event core -- plus hypothesis-random
programs on a jitter-bearing machine, where schedule shapes the compiler
would never emit get a vote.  Tightness (sim/lb) is additionally pinned
per zoo model so the lower bound cannot silently rot into a uselessly
loose floor.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings

from repro.compiler import CompileOptions, compile_model
from repro.compiler.program import CommandKind, ProgramBuilder
from repro.hw import exynos2100_like, tiny_test_machine
from repro.models import ZOO
from repro.sim import SimSession, simulate, simulate_event_driven
from repro.verify import BoundsViolation, bounds_for, compute_bounds
from repro.verify.bounds import check_bounds_pass

from tests.conftest import make_mixed_graph
from tests.sim.test_scheduler_equivalence import (
    CONFIGS,
    SEEDS,
    _jittery_machine,
    _program_for,
    random_program,
)

MODELS = [m.name for m in ZOO]


# ---- soundness: zoo x configs x seeds, both simulator cores ---------


@pytest.mark.parametrize("options", CONFIGS, ids=[o.label for o in CONFIGS])
@pytest.mark.parametrize("model", MODELS)
def test_zoo_brackets_hold(model: str, options: CompileOptions):
    program, machine = _program_for(model, options)
    report = bounds_for(program, machine)
    assert report.lower_bound_cycles <= report.upper_bound_cycles
    for seed in SEEDS:
        makespan = simulate(program, machine, seed=seed).makespan_cycles
        assert report.contains(makespan), (
            f"{model}/{options.label} seed {seed}: {makespan} outside "
            f"[{report.lower_bound_cycles}, {report.upper_bound_cycles}]"
        )
    # The bracket is a property of the semantics, not of one scheduler
    # implementation: the retained event core must satisfy it too.
    event = simulate_event_driven(program, machine, seed=0)
    assert report.contains(event.makespan_cycles)


@settings(max_examples=60, deadline=None)
@given(random_program())
def test_random_programs_bracketed(prog_cores):
    program, cores = prog_cores
    npu = _jittery_machine(cores)
    report = compute_bounds(program, npu)
    assert report.lower_bound_cycles <= report.upper_bound_cycles + 1e-9
    for seed in (0, 1, 2):
        makespan = simulate(program, npu, seed=seed, memo=None).makespan_cycles
        assert report.contains(makespan)
    event = simulate_event_driven(program, npu, seed=1)
    assert report.contains(event.makespan_cycles)


# ---- tightness regression pins (seed 0, Base) -----------------------

# Measured sim/lb at the time the bounds landed, +5% headroom.  A pin
# tripping means the lower bound got *looser* (or the scheduler got
# slower) -- either way worth a look before re-pinning.
_TIGHTNESS_PINS = {
    "InceptionV3": 1.070,
    "MobileNetV2": 1.164,
    "MobileNetV2-SSD": 1.114,
    "MobileDet-SSD": 1.112,
    "DeepLabV3+": 1.098,
    "UNet": 1.036,
}


@pytest.mark.parametrize("model", sorted(_TIGHTNESS_PINS))
def test_base_tightness_pinned(model: str):
    program, machine = _program_for(model, CompileOptions.base())
    report = bounds_for(program, machine)
    makespan = simulate(program, machine, seed=0).makespan_cycles
    assert report.tightness(makespan) <= _TIGHTNESS_PINS[model] * 1.05


def test_base_mean_tightness_within_budget():
    """Acceptance: mean Base tightness sim/lb <= 1.5 over the zoo."""
    tights = []
    for model in MODELS:
        program, machine = _program_for(model, CompileOptions.base())
        makespan = simulate(program, machine, seed=0).makespan_cycles
        tights.append(bounds_for(program, machine).tightness(makespan))
    assert sum(tights) / len(tights) <= 1.5


def test_single_core_bracket_degenerates():
    """No cross-core jitter on one core: the bracket closes to a point."""
    program, machine = _program_for("MobileNetV2", CompileOptions.single_core())
    report = bounds_for(program, machine)
    makespan = simulate(program, machine, seed=0).makespan_cycles
    assert report.tightness(makespan) == pytest.approx(1.0, abs=1e-6)


# ---- report shape ---------------------------------------------------


def test_report_attribution_and_dict():
    program, machine = _program_for("MobileNetV2", CompileOptions.base())
    report = bounds_for(program, machine)
    assert report.binding in ("compute", "bus", "sync")
    assert report.lower_bound_cycles >= report.bus_floor_cycles
    assert report.lower_bound_cycles >= report.engine_serial_cycles
    assert report.lower_bound_cycles >= report.critical_path_cycles
    # engine serial work never exceeds the critical path: engine edges
    # chain every queue, so each queue's serial sum is itself a path.
    assert report.engine_serial_cycles <= report.critical_path_cycles + 1e-6
    assert report.path_cids, "lower-bound critical path must be non-empty"
    d = report.to_dict()
    assert d["lower_bound_cycles"] == report.lower_bound_cycles
    assert d["binding"] == report.binding
    assert report.lower_bound_us == pytest.approx(
        report.lower_bound_cycles / (machine.frequency_ghz * 1000.0)
    )


def test_empty_program_bounds():
    report = compute_bounds(ProgramBuilder(2).build(), tiny_test_machine(2))
    assert report.lower_bound_cycles == 0.0
    assert report.upper_bound_cycles == 0.0
    assert report.contains(0.0)
    assert report.tightness(0.0) == 1.0


def test_bounds_for_caches_per_machine():
    program, machine = _program_for("UNet", CompileOptions.base())
    a = bounds_for(program, machine)
    assert bounds_for(program, machine) is a
    other = dataclasses.replace(machine, frequency_ghz=machine.frequency_ghz * 2)
    b = bounds_for(program, other)
    assert b is not a
    assert b.frequency_ghz != a.frequency_ghz


# ---- the bounds verifier pass (RPR701/702/710) ----------------------


@pytest.fixture(scope="module")
def compiled_mixed():
    return compile_model(
        make_mixed_graph(), tiny_test_machine(3), CompileOptions.base()
    )


def test_pass_emits_bracket_info(compiled_mixed):
    result = check_bounds_pass(compiled_mixed)
    assert result.ok
    assert [d.code for d in result.diagnostics] == ["RPR701"]
    assert result.stats["lower_bound_cycles"] <= result.stats["upper_bound_cycles"]


def test_pass_cross_checks_makespan(compiled_mixed):
    sim = simulate(compiled_mixed.program, compiled_mixed.npu, seed=0)
    result = check_bounds_pass(compiled_mixed, sim_result=sim)
    assert result.ok
    assert [d.code for d in result.diagnostics] == ["RPR701", "RPR702"]


def test_pass_flags_escaped_makespan(compiled_mixed):
    sim = simulate(compiled_mixed.program, compiled_mixed.npu, seed=0)
    impossible = dataclasses.replace(
        sim, makespan_cycles=sim.makespan_cycles * 1e6
    )
    result = check_bounds_pass(compiled_mixed, sim_result=impossible)
    assert not result.ok
    assert "RPR710" in [d.code for d in result.diagnostics]


# ---- check_bounds oracle wiring -------------------------------------


def test_simulate_check_bounds_passes(compiled_mixed):
    simulate(compiled_mixed.program, compiled_mixed.npu, check_bounds=True)


def test_simulate_check_bounds_rejects_faults(compiled_mixed):
    from repro.faults import FaultPlan, TransientStall

    plan = FaultPlan(events=(TransientStall(start_us=0.0, duration_us=5.0),))
    with pytest.raises(ValueError, match="check_bounds"):
        simulate(
            compiled_mixed.program, compiled_mixed.npu,
            faults=plan, check_bounds=True,
        )


def test_session_check_bounds_rejects_faults():
    from repro.faults import FaultPlan, TransientStall

    plan = FaultPlan(events=(TransientStall(start_us=0.0, duration_us=5.0),))
    with pytest.raises(ValueError, match="check_bounds"):
        SimSession(tiny_test_machine(2), faults=plan, check_bounds=True)


def test_session_check_bounds_event_loop_and_fast_path(compiled_mixed):
    program, npu = compiled_mixed.program, compiled_mixed.npu
    # memo=None forces the event loop through _finish_injection...
    s = SimSession(npu, memo=None, check_bounds=True)
    s.inject(program, 0.0, seed=0)
    out = s.run_until(stop_on_completion=False)
    assert len(out) == 1
    # ...and the default memo (warmed by the simulate() calls above)
    # exercises the fast-path delivery check.
    s2 = SimSession(npu, check_bounds=True)
    s2.inject(program, 0.0, seed=0)
    out2 = s2.run_until(stop_on_completion=False)
    assert out2[0].completed_at_cycles == pytest.approx(
        out[0].completed_at_cycles
    )


def test_bounds_violation_raises_with_context():
    program = ProgramBuilder(1)
    program.add(0, CommandKind.COMPUTE, deps=[], macs=1000)
    prog = program.build()
    npu = tiny_test_machine(1)
    report = compute_bounds(prog, npu)
    with pytest.raises(BoundsViolation) as exc:
        report.assert_contains(report.upper_bound_cycles * 10 + 1.0, "ctx")
    assert "ctx" in str(exc.value)


# ---- predictor fast path --------------------------------------------


def test_predictor_bound_brackets_isolated_run():
    from repro.serve import LatencyPredictor

    predictor = LatencyPredictor(exynos2100_like())
    lb, ub = predictor.bound_us("MobileNetV2")
    assert 0.0 < lb <= ub
    measured = predictor.predicted_latency_us("MobileNetV2")
    assert lb <= measured * (1 + 1e-9)
    assert measured <= ub * (1 + 1e-9)


def test_predictor_wave_bound_brackets_wave():
    from repro.serve import LatencyPredictor

    predictor = LatencyPredictor(exynos2100_like())
    pattern = (("MobileNetV2", (0,)), ("MobileNetV2", (1, 2)))
    lb, ub = predictor.wave_bound_us(pattern)
    measured = predictor.wave_latency_us(pattern)
    assert 0.0 < lb <= ub
    assert lb <= measured * (1 + 1e-9)
    assert measured <= ub * (1 + 1e-9)
