"""Result aggregation, comparison sweeps, and report rendering."""

from repro.analysis.critical_path import (
    CriticalPath,
    critical_path,
    engine_predecessors,
    longest_path_times,
    render_critical_path,
    walk_bindings,
)
from repro.analysis.autotune import (
    autotune_summary,
    render_autotune,
    render_autotune_comparison,
)
from repro.analysis.export import to_chrome_trace, write_chrome_trace
from repro.analysis.compare import (
    ConfigResult,
    paper_configurations,
    run_configuration,
    speedups,
    sweep_configurations,
)
from repro.analysis.gantt import exposed_waits, render_gantt
from repro.analysis.sweep import (
    SweepJob,
    SweepRecord,
    build_grid,
    record_speedups,
    records_by_model,
    resolve_model,
    run_sweep,
)
from repro.analysis.layer_report import (
    LayerProfile,
    profile_layers,
    render_layer_report,
    top_layers,
)
# The SPM audit lives in the verifier now (repro.verify.spm); keep the
# historical re-export so `from repro.analysis import audit_spm` works.
from repro.verify.spm import (
    SpmUsage,
    SpmViolation,
    audit_spm,
    peak_spm_per_core,
)
from repro.analysis.profiles import (
    PartitioningProfile,
    RegionSummary,
    partitioning_profile,
    region_summary,
    table4_profiles,
)
from repro.analysis.faults import (
    degradation_summary,
    render_degradation_table,
)
from repro.analysis.fleet import (
    fleet_summary,
    render_fleet_table,
    render_router_comparison,
    write_fleet_report,
)
from repro.analysis.serving import (
    render_serving_table,
    serving_summary,
    write_serving_report,
)
from repro.analysis.tables import format_kb, format_speedup, format_table, format_us

__all__ = [
    "ConfigResult",
    "CriticalPath",
    "critical_path",
    "engine_predecessors",
    "longest_path_times",
    "render_critical_path",
    "walk_bindings",
    "PartitioningProfile",
    "LayerProfile",
    "RegionSummary",
    "SpmUsage",
    "SpmViolation",
    "audit_spm",
    "peak_spm_per_core",
    "degradation_summary",
    "exposed_waits",
    "fleet_summary",
    "format_kb",
    "format_speedup",
    "format_table",
    "format_us",
    "paper_configurations",
    "partitioning_profile",
    "region_summary",
    "render_degradation_table",
    "render_gantt",
    "render_layer_report",
    "profile_layers",
    "top_layers",
    "render_fleet_table",
    "render_router_comparison",
    "render_serving_table",
    "run_configuration",
    "write_fleet_report",
    "run_sweep",
    "serving_summary",
    "write_serving_report",
    "record_speedups",
    "records_by_model",
    "resolve_model",
    "speedups",
    "sweep_configurations",
    "SweepJob",
    "SweepRecord",
    "build_grid",
    "table4_profiles",
    "to_chrome_trace",
    "write_chrome_trace",
    "autotune_summary",
    "render_autotune",
    "render_autotune_comparison",
]
