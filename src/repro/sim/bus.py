"""Fluid model of the shared bus to global memory.

All in-flight DMA transfers share the bus bandwidth by *water-filling*:
bandwidth is split evenly, but no transfer receives more than its core's
DMA link can carry; capacity freed by capped transfers is redistributed
among the rest.  This is the standard processor-sharing fluid
approximation of an interleaved memory bus and is what creates the
contention effects the paper measures (halo traffic "still takes up the
bandwidth of the system bus", Section 3.2).

The arithmetic here is load-bearing for reproducibility: the simulator
promises bit-identical traces for equal seeds, so any rewrite of these
methods must produce the exact same float sequences (same operations in
the same order), not merely equivalent math.  The numpy twins below
(``refill_rates_wide``, ``advance_wide``, ``eta_wide``) honour that
contract by vectorizing only the order-independent parts: elementwise
decrements are float-for-float what the scalar loop computes, min is a
selection, and the stable argsort equals the stable list sort -- while
the water-filling budget walk itself stays scalar, because its running
budget is *sequentially rounded* (each subtraction feeds the next fair
share) and has no closed form with the same rounding.  Both
:class:`FluidBus` and the inlined bus in :mod:`repro.sim.simulator`
switch to the twins once ``_VECTOR_MIN`` transfers are in flight;
below that, per-call numpy overhead loses to straight-line Python.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Sequence, Tuple

import numpy as np

# Residual bytes below this count as finished.  The scale matters: the
# simulation clock sits in the 1e5..1e7 cycle range, where float64 ulp is
# ~1e-10 cycles, so a byte-residue epsilon must be large enough that the
# corresponding eta never rounds to zero time (a livelock otherwise).
_EPS = 1e-6

#: in-flight transfer count at which the numpy twins take over.  Real
#: CNN programs keep 1-6 transfers in flight; many-tenant sessions and
#: synthetic wide-bus workloads cross over.  Read at call time, so
#: tests can monkeypatch it low to force the vector paths.
_VECTOR_MIN = 16

_by_cap = operator.attrgetter("cap")


def refill_rates_wide(caps: Sequence[float], bandwidth: float) -> List[float]:
    """Water-filling rates for ``caps`` sharing ``bandwidth`` (vectorized sort).

    The stable argsort equals ``sorted(range(n), key=caps.__getitem__)``
    (ties keep insertion order).  The budget walk stays scalar: each
    subtraction's rounding feeds the next fair share, so vectorizing it
    would change the float sequence.
    """
    order = np.argsort(np.asarray(caps), kind="stable").tolist()
    n = len(order)
    rates = [0.0] * n
    budget = bandwidth
    i = n
    for j in order:
        fair = budget / i
        cap = caps[j]
        rate = cap if cap <= fair else fair
        rates[j] = rate
        budget -= rate
        i -= 1
    return rates


def advance_wide(
    rem: Sequence[float], rates: Sequence[float], dt: float
) -> Tuple[List[float], List[int]]:
    """Decrement all residuals by ``rate * dt`` in one array op.

    Returns the new residuals and the indices that crossed the finish
    epsilon.  ``a - b * dt`` elementwise over float64 is bit-identical
    to the scalar per-transfer decrement.
    """
    new = np.asarray(rem) - np.asarray(rates) * dt
    fin = np.nonzero(new <= _EPS)[0]
    return new.tolist(), fin.tolist()


def eta_wide(rem: Sequence[float], rates: Sequence[float]) -> float:
    """Time until the next transfer finishes, as one masked reduction.

    Matches the scalar eta exactly: negative residuals clamp to zero
    (``where``, not ``maximum``, to preserve -0.0 handling) and min is
    an order-independent selection.
    """
    rate_arr = np.asarray(rates)
    mask = rate_arr > 0.0
    if not mask.any():
        return float("inf")
    rem_arr = np.asarray(rem)[mask]
    rem_arr = np.where(rem_arr < 0.0, 0.0, rem_arr)
    return float((rem_arr / rate_arr[mask]).min())


class _Transfer:
    __slots__ = ("cid", "remaining", "cap", "rate")

    def __init__(self, cid: int, remaining: float, cap: float, rate: float = 0.0):
        self.cid = cid
        self.remaining = remaining
        self.cap = cap
        self.rate = rate


class FluidBus:
    """Tracks active DMA transfers and their instantaneous rates."""

    def __init__(self, total_bandwidth: float) -> None:
        if total_bandwidth <= 0:
            raise ValueError("bus bandwidth must be positive")
        self.total_bandwidth = total_bandwidth
        self._active: Dict[int, _Transfer] = {}

    @property
    def num_active(self) -> int:
        return len(self._active)

    def add(self, cid: int, num_bytes: float, link_cap: float) -> bool:
        """Register a transfer; returns True if it completed at add time.

        Zero-byte (and negative) transfers really do complete
        immediately: nothing is registered and the rates of in-flight
        transfers are untouched.  (They used to be registered active,
        skewing the water-filling split for every other transfer until
        the next ``advance`` retired them.)  Both event cores gate bus
        entry on ``num_bytes > 0``, so this path only serves direct
        users of the bus model.
        """
        if cid in self._active:
            raise ValueError(f"transfer {cid} already active")
        if link_cap <= 0:
            raise ValueError("link capacity must be positive")
        if num_bytes <= 0:
            return True
        self._active[cid] = _Transfer(cid, float(num_bytes), link_cap)
        self._recompute_rates()
        return False

    def _recompute_rates(self) -> None:
        """Water-filling allocation of the bus among active transfers."""
        active = self._active
        budget = self.total_bandwidth
        n = len(active)
        if n == 1:
            for tr in active.values():
                tr.rate = tr.cap if tr.cap <= budget else budget
            return
        if n >= _VECTOR_MIN:
            # Vector twin: stable argsort over insertion order equals
            # the stable sort of the dict's values.
            transfers = list(active.values())
            rates = refill_rates_wide([tr.cap for tr in transfers], budget)
            for tr, rate in zip(transfers, rates):
                tr.rate = rate
            return
        transfers = sorted(active.values(), key=_by_cap)
        for i, tr in enumerate(transfers):
            fair = budget / (n - i)
            cap = tr.cap
            rate = cap if cap <= fair else fair
            tr.rate = rate
            budget -= rate

    def eta(self) -> float:
        """Time until the next active transfer finishes (inf when idle)."""
        active = self._active
        if len(active) >= _VECTOR_MIN:
            return eta_wide(
                [tr.remaining for tr in active.values()],
                [tr.rate for tr in active.values()],
            )
        best = float("inf")
        for tr in active.values():
            rate = tr.rate
            if rate > 0:
                remaining = tr.remaining
                if remaining < 0.0:
                    remaining = 0.0
                t = remaining / rate
                if t < best:
                    best = t
        return best

    def advance(self, dt: float) -> List[int]:
        """Progress all transfers by ``dt``; return cids that completed."""
        if dt < 0:
            raise ValueError("cannot advance backwards")
        active = self._active
        finished: List[int] = []
        if len(active) >= _VECTOR_MIN:
            transfers = list(active.values())
            new_rem, fin = advance_wide(
                [tr.remaining for tr in transfers],
                [tr.rate for tr in transfers],
                dt,
            )
            for tr, rem in zip(transfers, new_rem):
                tr.remaining = rem
            finished = [transfers[i].cid for i in fin]
        else:
            for tr in active.values():
                tr.remaining -= tr.rate * dt
                if tr.remaining <= _EPS:
                    finished.append(tr.cid)
        if finished:
            for cid in finished:
                del active[cid]
            self._recompute_rates()
        return finished

    def rates(self) -> Dict[int, float]:
        return {cid: tr.rate for cid, tr in self._active.items()}

    def cancel(self, cid: int) -> None:
        """Abort an in-flight transfer (fault injection: its core died).

        The freed bandwidth is redistributed among the survivors, same
        as on a normal completion.
        """
        if cid not in self._active:
            raise KeyError(f"transfer {cid} not active")
        del self._active[cid]
        self._recompute_rates()

    def force_min_completion(self) -> List[int]:
        """Finish the transfer(s) closest to done.

        Safety valve against floating-point livelock: when the remaining
        eta underflows the clock's resolution, the caller retires the
        nearest transfer directly instead of advancing time by zero.
        Raises ``RuntimeError`` when no transfer is making progress at
        all (every active rate is zero) -- returning an empty list would
        send the caller back into a zero-dt spin, so the degenerate case
        is reported as the bus-side analogue of a scheduling deadlock.
        """
        if not self._active:
            return []
        nearest = min(
            max(0.0, tr.remaining) / tr.rate if tr.rate > 0 else float("inf")
            for tr in self._active.values()
        )
        if nearest == float("inf"):
            stuck = [
                f"#{tr.cid} {tr.remaining:.1f}B left, cap={tr.cap}, rate=0"
                for tr in self._active.values()
            ]
            raise RuntimeError(
                "bus livelock: no active transfer is making progress "
                f"(bandwidth={self.total_bandwidth}): {stuck[:8]}"
            )
        finished = [
            tr.cid
            for tr in self._active.values()
            if tr.rate > 0
            and max(0.0, tr.remaining) / tr.rate <= nearest + _EPS
        ]
        for cid in finished:
            del self._active[cid]
        if finished:
            self._recompute_rates()
        return finished
