"""Figure 11: performance (1/latency) of the four cumulative configurations
across the six benchmark CNNs, plus the speedup summary quoted in the
abstract (Base ~2x ceiling, +Halo ~1.07x, +Stratum ~1.23x cumulative,
~2.1x over single core).

The sweep itself runs through :func:`repro.analysis.run_sweep`, so
compilation goes through the fingerprint-keyed program cache and the
timed number is the real cost of regenerating the figure.

Run with ``pytest benchmarks/bench_fig11_performance.py --benchmark-only -s``.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

import pytest

from repro.analysis import (
    SweepRecord,
    build_grid,
    format_table,
    record_speedups,
    run_sweep,
)
from repro.models import ZOO

from benchmarks.conftest import emit

CONFIG_LABELS = ["1-core", "Base", "+Halo", "+Stratum"]

_sweeps: Dict[str, List[SweepRecord]] = {}


def _sweep(npu, name) -> List[SweepRecord]:
    if name not in _sweeps:
        _sweeps[name] = run_sweep(build_grid([name]), npu, max_workers=1)
    return _sweeps[name]


def _latencies(records: List[SweepRecord]) -> Dict[str, float]:
    return {r.label: r.latency_us for r in records}


@pytest.mark.parametrize("model", [m.name for m in ZOO])
def test_fig11_model(benchmark, npu, model):
    """Wall-time of the full compile+simulate sweep; simulated metrics in
    extra_info."""
    records = benchmark.pedantic(
        lambda: _sweep(npu, model), rounds=1, iterations=1
    )
    lat = _latencies(records)
    for label in CONFIG_LABELS:
        benchmark.extra_info[f"{label}_latency_us"] = round(lat[label], 1)
    s = record_speedups(records)[model]
    benchmark.extra_info["speedup_vs_1core"] = round(s["+Stratum"], 3)


def test_fig11_report(benchmark, npu, out_dir):
    # uses the benchmark fixture so the report also runs (and is timed)
    # under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    ratios = {"base": [], "halo": [], "stratum": [], "total": []}
    for info in ZOO:
        lat = _latencies(_sweep(npu, info.name))
        perf = {label: 1000.0 / lat[label] for label in CONFIG_LABELS}
        ratios["base"].append(lat["1-core"] / lat["Base"])
        ratios["halo"].append(lat["Base"] / lat["+Halo"])
        ratios["stratum"].append(lat["Base"] / lat["+Stratum"])
        ratios["total"].append(lat["1-core"] / lat["+Stratum"])
        rows.append(
            [info.name]
            + [f"{perf[label]:.3f}" for label in CONFIG_LABELS]
            + [f"{lat['1-core'] / lat['+Stratum']:.2f}x"]
        )
    g = statistics.geometric_mean
    table = format_table(
        ["Model"] + [f"{c} (1/ms)" for c in CONFIG_LABELS] + ["speedup"],
        rows,
        title="Figure 11: performance (1/latency) per configuration",
    )
    summary = "\n".join(
        [
            "",
            "Average (geomean) ratios vs paper:",
            f"  Base / 1-core        : {g(ratios['base']):.2f}x   (paper ~1.71x)",
            f"  +Halo / Base         : {g(ratios['halo']):.3f}x  (paper ~1.07x)",
            f"  +Stratum / Base      : {g(ratios['stratum']):.3f}x  (paper ~1.23x)",
            f"  +Stratum / 1-core    : {g(ratios['total']):.2f}x   (paper ~2.1x)",
        ]
    )
    emit(out_dir, "fig11_performance.txt", table + summary)
    assert g(ratios["base"]) > 1.2
    assert g(ratios["total"]) > 1.5
