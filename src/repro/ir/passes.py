"""Graph-level optimization passes (the compiler front end).

The NPU executes fused operator bundles, so the front end canonicalizes
the imported graph before partitioning:

* ``fold_activations`` -- a standalone ``Activation`` following an op
  with a fusable activation slot merges into the producer (one NPU
  command instead of two layer executions);
* ``remove_identity_crops`` -- crops that change nothing disappear;
* ``eliminate_dead_layers`` -- layers whose results no graph output
  depends on are dropped (e.g. auxiliary training heads).

Passes are pure: they build a new Graph and never mutate the input.
``optimize`` runs the standard pipeline and reports what happened.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.ir.graph import Graph
from repro.ir.ops import (
    Activation,
    Add,
    Conv2D,
    Crop,
    Dense,
    DepthwiseConv2D,
    Mul,
    TransposedConv2D,
)

#: ops with a fusable ``activation`` attribute.
_FUSABLE = (Conv2D, DepthwiseConv2D, Dense, Add, Mul, TransposedConv2D)


@dataclasses.dataclass
class PassReport:
    """What the optimization pipeline changed."""

    folded_activations: int = 0
    removed_crops: int = 0
    removed_dead: int = 0

    @property
    def total_removed(self) -> int:
        return self.folded_activations + self.removed_crops + self.removed_dead


def _rebuild(
    graph: Graph,
    drop: Dict[str, str],
    new_ops: Optional[Dict[str, object]] = None,
) -> Graph:
    """Copy ``graph`` without the layers in ``drop`` (remapping consumers
    to ``drop[name]``) and with ``new_ops`` overriding operators."""
    new_ops = new_ops or {}
    out = Graph(graph.name)

    def resolve(name: str) -> str:
        while name in drop:
            name = drop[name]
        return name

    for layer in graph.layers():
        if layer.name in drop:
            continue
        op = new_ops.get(layer.name, layer.op)
        inputs = [resolve(src) for src in layer.inputs]
        out.add(layer.name, op, inputs, dtype=layer.dtype)
    return out


def fold_activations(graph: Graph) -> Tuple[Graph, int]:
    """Merge standalone Activation layers into fusable producers.

    Applies when the Activation is the producer's *only* consumer and
    the producer has an empty activation slot.
    """
    drop: Dict[str, str] = {}
    new_ops: Dict[str, object] = {}
    for layer in graph.layers():
        if not isinstance(layer.op, Activation):
            continue
        (producer_name,) = layer.inputs
        producer = graph.layer(producer_name)
        if producer.name in drop or producer.name in new_ops:
            continue
        if not isinstance(producer.op, _FUSABLE):
            continue
        if producer.op.activation is not None:
            continue
        if graph.consumers(producer_name) != [layer.name]:
            continue
        new_ops[producer_name] = dataclasses.replace(
            producer.op, activation=layer.op.kind
        )
        drop[layer.name] = producer_name
    if not drop:
        return graph, 0
    return _rebuild(graph, drop, new_ops), len(drop)


def remove_identity_crops(graph: Graph) -> Tuple[Graph, int]:
    """Drop Crop layers whose output equals their input."""
    drop: Dict[str, str] = {}
    for layer in graph.layers():
        if not isinstance(layer.op, Crop):
            continue
        (ishape,) = layer.input_shapes
        if (layer.op.out_h, layer.op.out_w) == (ishape.h, ishape.w):
            drop[layer.name] = layer.inputs[0]
    if not drop:
        return graph, 0
    return _rebuild(graph, drop), len(drop)


def eliminate_dead_layers(
    graph: Graph, keep: Optional[List[str]] = None
) -> Tuple[Graph, int]:
    """Drop layers no kept output transitively depends on.

    ``keep`` defaults to the graph's outputs (layers with no consumers).
    """
    keep = keep or [l.name for l in graph.outputs()]
    live = set()
    stack = list(keep)
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        stack.extend(graph.producers(name))
    dead = [l.name for l in graph.layers() if l.name not in live]
    if not dead:
        return graph, 0
    out = Graph(graph.name)
    for layer in graph.layers():
        if layer.name in live:
            out.add(layer.name, layer.op, list(layer.inputs), dtype=layer.dtype)
    return out, len(dead)


def optimize(
    graph: Graph, keep: Optional[List[str]] = None
) -> Tuple[Graph, PassReport]:
    """Run the standard front-end pipeline to a fixed point.

    ``keep`` names the true network outputs; without it every
    consumer-less layer counts as an output (nothing is "dead" merely
    for being last).
    """
    report = PassReport()
    changed = True
    while changed:
        changed = False
        graph, n = fold_activations(graph)
        report.folded_activations += n
        changed = changed or n > 0
        graph, n = remove_identity_crops(graph)
        report.removed_crops += n
        changed = changed or n > 0
        graph, n = eliminate_dead_layers(graph, keep=keep)
        report.removed_dead += n
        changed = changed or n > 0
    graph.validate()
    return graph, report
