"""Shared-bus fluid model: water-filling rates and byte conservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.bus import FluidBus


class TestRates:
    def test_single_transfer_capped_by_link(self):
        bus = FluidBus(100.0)
        bus.add(0, 1000, link_cap=30.0)
        assert bus.rates()[0] == pytest.approx(30.0)

    def test_single_transfer_capped_by_bus(self):
        bus = FluidBus(20.0)
        bus.add(0, 1000, link_cap=30.0)
        assert bus.rates()[0] == pytest.approx(20.0)

    def test_equal_sharing(self):
        bus = FluidBus(30.0)
        bus.add(0, 1000, link_cap=100.0)
        bus.add(1, 1000, link_cap=100.0)
        assert bus.rates() == {0: pytest.approx(15.0), 1: pytest.approx(15.0)}

    def test_water_filling_redistributes(self):
        """A capped transfer frees bandwidth for the uncapped ones."""
        bus = FluidBus(30.0)
        bus.add(0, 1000, link_cap=5.0)
        bus.add(1, 1000, link_cap=100.0)
        rates = bus.rates()
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(25.0)

    def test_three_way_with_mixed_caps(self):
        bus = FluidBus(30.0)
        bus.add(0, 1000, link_cap=4.0)
        bus.add(1, 1000, link_cap=10.0)
        bus.add(2, 1000, link_cap=100.0)
        rates = bus.rates()
        assert rates[0] == pytest.approx(4.0)
        assert rates[1] == pytest.approx(10.0)
        assert rates[2] == pytest.approx(16.0)

    def test_total_never_exceeds_bus(self):
        bus = FluidBus(12.0)
        for i in range(5):
            bus.add(i, 100, link_cap=8.0)
        assert sum(bus.rates().values()) <= 12.0 + 1e-9


class TestAdvance:
    def test_progress_and_completion(self):
        bus = FluidBus(10.0)
        bus.add(0, 100, link_cap=10.0)
        assert bus.advance(5.0) == []
        finished = bus.advance(5.0)
        assert finished == [0]
        assert bus.num_active == 0

    def test_eta(self):
        bus = FluidBus(10.0)
        bus.add(0, 50, link_cap=10.0)
        assert bus.eta() == pytest.approx(5.0)
        bus.add(1, 100, link_cap=10.0)  # now both run at 5 B/cy
        assert bus.eta() == pytest.approx(10.0)

    def test_eta_idle_is_inf(self):
        assert FluidBus(10.0).eta() == float("inf")

    def test_rates_rise_after_completion(self):
        bus = FluidBus(10.0)
        bus.add(0, 25, link_cap=10.0)
        bus.add(1, 1000, link_cap=10.0)
        bus.advance(5.0)  # transfer 0 finishes (25 bytes at 5 B/cy)
        assert bus.rates()[1] == pytest.approx(10.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            FluidBus(10.0).advance(-1.0)

    def test_duplicate_cid_rejected(self):
        bus = FluidBus(10.0)
        bus.add(0, 10, link_cap=1.0)
        with pytest.raises(ValueError):
            bus.add(0, 10, link_cap=1.0)

    def test_zero_byte_completes_immediately(self):
        """A zero-byte add retires at add time: nothing is registered
        (``add`` returns True) and there is nothing left to advance."""
        bus = FluidBus(10.0)
        assert bus.add(0, 0, link_cap=5.0) is True
        assert bus.num_active == 0
        assert bus.advance(0.0) == []

    def test_zero_byte_add_leaves_rates_unchanged(self):
        """In-flight transfer rates are not skewed by a zero-byte add.

        Before the fix the zero-byte transfer was registered active and
        took a water-filling share until the next ``advance`` retired
        it; the two real transfers below would each have been squeezed
        to 10/3 instead of keeping their fair 5.0 split.
        """
        bus = FluidBus(10.0)
        assert bus.add(0, 1000, link_cap=100.0) is False
        assert bus.add(1, 1000, link_cap=100.0) is False
        before = bus.rates()
        assert bus.add(2, 0, link_cap=100.0) is True
        assert bus.rates() == before
        assert bus.rates() == {0: 5.0, 1: 5.0}

    def test_force_min_completion(self):
        bus = FluidBus(10.0)
        bus.add(0, 1e-8, link_cap=5.0)
        bus.add(1, 1000, link_cap=5.0)
        finished = bus.force_min_completion()
        assert finished == [0]
        assert bus.num_active == 1

    def test_force_min_completion_idle_is_noop(self):
        assert FluidBus(10.0).force_min_completion() == []

    def test_force_min_completion_all_stalled_raises(self):
        """Regression: active transfers with zero rate used to make
        ``force_min_completion`` return ``[]``, sending the simulator
        back into an infinite dt == 0 loop.  The degenerate state must
        surface as a diagnostic error instead."""
        bus = FluidBus(10.0)
        bus.add(0, 500, link_cap=5.0)
        bus.add(1, 700, link_cap=5.0)
        for tr in bus._active.values():  # corrupt into the stalled state
            tr.rate = 0.0
        with pytest.raises(RuntimeError, match="bus livelock"):
            bus.force_min_completion()

    def test_force_min_completion_ignores_stalled_minority(self):
        """One stalled transfer must not mask a progressing one."""
        bus = FluidBus(10.0)
        bus.add(0, 500, link_cap=5.0)
        bus.add(1, 1e-8, link_cap=5.0)
        bus._active[0].rate = 0.0
        assert bus.force_min_completion() == [1]
        assert bus.num_active == 1


@settings(max_examples=60, deadline=None)
@given(
    bus_bw=st.floats(1.0, 100.0),
    transfers=st.lists(
        st.tuples(st.integers(1, 10_000), st.floats(0.5, 50.0)),
        min_size=1,
        max_size=6,
    ),
    frac=st.floats(0.3, 1.0),
)
def test_property_bytes_conserved(bus_bw, transfers, frac):
    """Sum of bytes delivered over time equals the bytes submitted."""
    bus = FluidBus(bus_bw)
    total = 0
    for i, (nbytes, cap) in enumerate(transfers):
        bus.add(i, nbytes, link_cap=cap)
        total += nbytes
    elapsed = 0.0
    guard = 0
    while bus.num_active and guard < 20_000:
        guard += 1
        dt = bus.eta() * frac
        bus.advance(dt)
        elapsed += dt
    assert bus.num_active == 0
    # time is at least the ideal bus-limited time
    assert elapsed * bus_bw >= total - 1e-3 - len(transfers)
