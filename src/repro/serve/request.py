"""Requests and the deterministic open-loop arrival generator.

A serving workload is a stream of inference *requests*: each names a
model, arrives at a point in simulated time, and optionally carries a
latency SLO.  The generator is open-loop (arrivals do not wait for
completions -- the regime that actually stresses a scheduler) with
Poisson interarrivals drawn from one seeded generator, so a fixed
``(models, rps, duration, seed)`` tuple always produces the identical
request stream regardless of scheduling policy.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, List, Optional, Sequence, Tuple, Union

#: a workload mix entry: a model name, or (model name, relative weight).
MixEntry = Union[str, Tuple[str, float]]


@dataclasses.dataclass(frozen=True)
class Request:
    """One inference request.

    ``slo_us`` is the end-to-end (queueing + execution) latency target;
    zero means the request carries no SLO.
    """

    rid: int
    model: str
    arrival_us: float
    slo_us: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_us < 0:
            raise ValueError(f"request {self.rid}: negative arrival time")
        if self.slo_us < 0:
            raise ValueError(f"request {self.rid}: negative SLO")


@dataclasses.dataclass(frozen=True)
class RequestResult:
    """The served outcome of one request."""

    request: Request
    #: when the request's first command started executing.
    start_us: float
    #: when its last command completed.
    finish_us: float
    #: the core group it ran on.
    cores: Tuple[int, ...]
    #: index of the wave that executed it.
    wave: int
    #: executions it took (1 = first try; >1 means faulted waves were
    #: retried by the degraded-mode server).
    attempts: int = 1

    @property
    def queue_us(self) -> float:
        """Time spent waiting for admission."""
        return max(0.0, self.start_us - self.request.arrival_us)

    @property
    def exec_us(self) -> float:
        """Execution span on the machine (first start to last end)."""
        return self.finish_us - self.start_us

    @property
    def total_us(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.finish_us - self.request.arrival_us

    @property
    def slo_met(self) -> bool:
        """True when there is no SLO or the end-to-end latency beat it."""
        return self.request.slo_us <= 0 or self.total_us <= self.request.slo_us


def _normalize_mix(models: Sequence[MixEntry]) -> Tuple[List[str], List[float]]:
    names: List[str] = []
    weights: List[float] = []
    for entry in models:
        if isinstance(entry, str):
            names.append(entry)
            weights.append(1.0)
        else:
            name, weight = entry
            if weight <= 0:
                raise ValueError(f"model {name!r}: weight must be positive")
            names.append(name)
            weights.append(float(weight))
    if not names:
        raise ValueError("workload mix needs at least one model")
    return names, weights


def generate_requests(
    models: Sequence[MixEntry],
    rps: float,
    duration_us: float,
    seed: int = 0,
    max_requests: int = 0,
    slo_of: Optional[Callable[[str], float]] = None,
) -> List[Request]:
    """Draw an open-loop Poisson request stream.

    Arrivals fall in ``[0, duration_us)`` at ``rps`` requests per second
    of simulated time; ``max_requests`` (when positive) additionally
    caps the count.  ``slo_of`` maps a model name to its per-request SLO
    in microseconds (omitted: no SLOs).  Deterministic per seed.
    """
    if rps <= 0:
        raise ValueError("rps must be positive")
    if duration_us <= 0:
        raise ValueError("duration_us must be positive")
    names, weights = _normalize_mix(models)

    rng = random.Random(seed)
    mean_gap_us = 1e6 / rps
    requests: List[Request] = []
    clock = rng.expovariate(1.0) * mean_gap_us
    while clock < duration_us:
        if max_requests and len(requests) >= max_requests:
            break
        model = rng.choices(names, weights=weights)[0]
        requests.append(
            Request(
                rid=len(requests),
                model=model,
                arrival_us=clock,
                slo_us=slo_of(model) if slo_of is not None else 0.0,
            )
        )
        clock += rng.expovariate(1.0) * mean_gap_us
    return requests
