"""Energy ablation (extension): what the optimizations buy in joules.

The paper motivates feature-map forwarding with "performance, power, and
memory bandwidth" (Section 3); this bench quantifies the power half on
the simulated machine: per-configuration energy breakdowns for every zoo
model, with DRAM traffic -- the dominant term -- falling as forwarding
and strata eliminate store/load round trips.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, sweep_configurations
from repro.models import ZOO
from repro.sim import estimate_energy

from benchmarks.conftest import emit

LABELS = ["1-core", "Base", "+Halo", "+Stratum"]

_reports = {}


def _energy(npu, model: str):
    if model not in _reports:
        info = next(m for m in ZOO if m.name == model)
        sweep = sweep_configurations(info.factory(), npu)
        _reports[model] = {
            label: estimate_energy(sweep[label].sim.trace, sweep[label].compiled.npu)
            for label in LABELS
        }
    return _reports[model]


@pytest.mark.parametrize("model", [m.name for m in ZOO])
def test_energy_model(benchmark, npu, model):
    reports = benchmark.pedantic(lambda: _energy(npu, model), rounds=1, iterations=1)
    for label in LABELS:
        benchmark.extra_info[f"{label}_uj"] = round(reports[label].total_uj, 1)


def test_energy_report(benchmark, npu, out_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for info in ZOO:
        reports = _energy(npu, info.name)
        base = reports["Base"]
        strat = reports["+Stratum"]
        rows.append(
            [
                info.name,
                *(f"{reports[l].total_uj:,.0f}" for l in LABELS),
                f"{base.dram_uj / strat.dram_uj:.2f}x",
            ]
        )
    table = format_table(
        ["Model"] + [f"{l} (uJ)" for l in LABELS] + ["DRAM saving"],
        rows,
        title="Energy per inference by configuration (extension experiment)",
    )
    emit(out_dir, "energy.txt", table)

    # Forwarding + strata must reduce DRAM energy vs Base on every model.
    for info in ZOO:
        reports = _energy(npu, info.name)
        assert reports["+Stratum"].dram_uj <= reports["Base"].dram_uj
