"""The flat struct-of-arrays core is bit-identical to the event-driven core.

``tests/sim/test_scheduler_equivalence.py`` pins the retained
queue-scanning reference; this file pins the *previous* event-driven
generation (:func:`repro.sim.simulate_event_driven`, object-based bus,
eager water-filling, in-loop readiness bookkeeping) against the flat
core now living in :mod:`repro.sim.simulator` -- clean and faulted,
one-shot and through :class:`~repro.sim.SimSession`.  All comparisons
run with ``memo=None`` where applicable so the event loop itself is
exercised, not a cached result.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings

from repro.compiler import CompileOptions
from repro.faults import CoreOffline, FaultPlan, ThermalThrottle, TransientStall
from repro.faults.engine import simulate_faulted
from repro.models import ZOO
from repro.sim import SimSession, simulate, simulate_event_driven

from tests.sim.test_scheduler_equivalence import (
    CONFIGS,
    SEEDS,
    _jittery_machine,
    _program_for,
    assert_traces_identical,
    random_program,
)


@pytest.mark.parametrize("options", CONFIGS, ids=[o.label for o in CONFIGS])
@pytest.mark.parametrize("model", [m.name for m in ZOO])
def test_zoo_traces_bit_identical(model: str, options: CompileOptions):
    program, machine = _program_for(model, options)
    for seed in SEEDS:
        flat = simulate(program, machine, seed=seed, memo=None)
        event_driven = simulate_event_driven(program, machine, seed=seed)
        assert_traces_identical(flat, event_driven)


@settings(max_examples=60, deadline=None)
@given(random_program())
def test_random_programs_bit_identical(prog_cores):
    program, cores = prog_cores
    npu = _jittery_machine(cores)
    for seed in (0, 3):
        flat = simulate(program, npu, seed=seed, memo=None)
        event_driven = simulate_event_driven(program, npu, seed=seed)
        assert_traces_identical(flat, event_driven)


class TestFaulted:
    """The fault engine now draws jitter from the shared per-plan table;
    pin that faulted runs are deterministic and unchanged by memoization."""

    PLAN = FaultPlan(
        events=(
            TransientStall(start_us=10.0, duration_us=200.0, core=0),
            ThermalThrottle(cores=(1,)),
            CoreOffline(core=2, at_us=1500.0),
        )
    )

    def _machine_and_program(self):
        program, machine = _program_for("InceptionV3", CompileOptions.stratum_config())
        return program, machine

    def test_faulted_runs_deterministic(self):
        program, machine = self._machine_and_program()
        a = simulate_faulted(program, machine, seed=1, plan=self.PLAN, memo=None)
        b = simulate_faulted(program, machine, seed=1, plan=self.PLAN, memo=None)
        assert_traces_identical(a, b)
        assert a.faults is not None and b.faults is not None
        assert a.faults == b.faults

    def test_memoized_faulted_matches_unmemoized(self):
        from repro.sim.memo import SimMemo

        program, machine = self._machine_and_program()
        fresh = simulate_faulted(program, machine, seed=1, plan=self.PLAN, memo=None)
        memo = SimMemo(store_on_first_miss=True)
        first = simulate_faulted(program, machine, seed=1, plan=self.PLAN, memo=memo)
        second = simulate_faulted(program, machine, seed=1, plan=self.PLAN, memo=memo)
        assert second is first  # cache hit returns the shared object
        assert_traces_identical(first, fresh)

    def test_faulted_routes_through_simulate(self):
        program, machine = self._machine_and_program()
        via_simulate = simulate(program, machine, seed=1, faults=self.PLAN, memo=None)
        direct = simulate_faulted(program, machine, seed=1, plan=self.PLAN, memo=None)
        assert_traces_identical(via_simulate, direct)


class TestSession:
    """Session solo replay pins the flat one-shot core, with and without
    the memo fast path in play."""

    def _events(self, trace):
        return [dataclasses.astuple(e) for e in trace.events]

    def test_solo_injection_replays_flat_core(self):
        program, machine = _program_for("MobileNetV2", CompileOptions.base())
        ref = simulate(program, machine, seed=2, memo=None)
        session = SimSession(machine, memo=None)
        session.inject(program, at_us=0.0, seed=2)
        (out,) = session.run_until()
        assert out.completed_at_cycles == ref.makespan_cycles
        assert self._events(out.trace) == self._events(ref.trace)

    def test_fast_path_outcome_bit_identical_to_loop(self):
        """A second solo injection of the same (program, seed) is served
        from the memo without running the loop; its outcome must match
        the first (loop-run) injection exactly."""
        from repro.sim.memo import SimMemo

        program, machine = _program_for("MobileNetV2", CompileOptions.base())
        memo = SimMemo(store_on_first_miss=True)
        session = SimSession(machine, memo=memo)
        session.inject(program, at_us=0.0, seed=2)
        (first,) = session.run_until()
        assert memo.hits == 0  # the first run populated the cache

        session.inject(program, at_us=9000.5, seed=2)
        (second,) = session.run_until()
        assert memo.hits == 1  # delivered by the fast path
        assert second.completed_at_cycles == first.completed_at_cycles
        assert self._events(second.trace) == self._events(first.trace)
        assert second.origin_us == 9000.5
