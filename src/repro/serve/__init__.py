"""Request-level serving simulator on top of the compiler + machine sim.

``repro.serve`` answers the question the per-program simulator cannot:
what happens when inference *requests* arrive over time and a scheduler
must decide which ones run when, on which cores.  See
:mod:`repro.serve.server` for the execution model.
"""

from repro.serve.continuous import serve_continuous, serve_degraded_continuous
from repro.serve.degraded import serve_degraded
from repro.serve.fleet import (
    CacheAffinityRouter,
    DeviceSummary,
    FleetDevice,
    FleetReport,
    LeastLoadedRouter,
    PowerOfTwoRouter,
    ROUTER_NAMES,
    RequestRouter,
    RouteRecord,
    RoundRobinRouter,
    get_router,
    make_fleet,
    route_requests,
    serve_fleet,
)
from repro.serve.metrics import (
    AdmissionRecord,
    ContinuousStats,
    DegradedStats,
    ServeReport,
    ShedRecord,
    build_report,
    percentile,
)
from repro.serve.policies import (
    Assignment,
    DynamicPolicy,
    FifoPolicy,
    POLICY_NAMES,
    PolicyError,
    SchedulingPolicy,
    SjfPolicy,
    get_policy,
    validate_assignments,
)
from repro.serve.predictor import LatencyPredictor, resolve_graph
from repro.serve.request import (
    ARRIVAL_KINDS,
    MixEntry,
    Request,
    RequestResult,
    generate_bursty,
    generate_diurnal,
    generate_requests,
    generate_sessions,
    make_arrivals,
)
from repro.serve.seeding import wave_seed
from repro.serve.server import serve, serve_policies

__all__ = [
    "ARRIVAL_KINDS",
    "AdmissionRecord",
    "Assignment",
    "CacheAffinityRouter",
    "ContinuousStats",
    "DegradedStats",
    "DeviceSummary",
    "DynamicPolicy",
    "FifoPolicy",
    "FleetDevice",
    "FleetReport",
    "LatencyPredictor",
    "LeastLoadedRouter",
    "MixEntry",
    "POLICY_NAMES",
    "PolicyError",
    "PowerOfTwoRouter",
    "ROUTER_NAMES",
    "Request",
    "RequestResult",
    "RequestRouter",
    "RouteRecord",
    "RoundRobinRouter",
    "SchedulingPolicy",
    "ServeReport",
    "ShedRecord",
    "SjfPolicy",
    "build_report",
    "generate_bursty",
    "generate_diurnal",
    "generate_requests",
    "generate_sessions",
    "get_policy",
    "get_router",
    "make_arrivals",
    "make_fleet",
    "percentile",
    "resolve_graph",
    "route_requests",
    "serve",
    "serve_continuous",
    "serve_degraded",
    "serve_degraded_continuous",
    "serve_fleet",
    "serve_policies",
    "validate_assignments",
    "wave_seed",
]
