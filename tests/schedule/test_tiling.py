"""Tiling for pipelined execution: SPM fit, coverage, halo-first order."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost.memory import aligned_region_bytes, aligned_weight_bytes
from repro.hw import tiny_test_machine
from repro.ir import Conv2D, Graph, Input, Region, TensorShape, Window2D
from repro.schedule import Tile, order_halo_first, plan_tiles


def conv_layer(h=32, w=32, c_in=8, c_out=16, kernel=3):
    g = Graph("g")
    g.add("in", Input(TensorShape(h, w, c_in)))
    g.add(
        "c",
        Conv2D(out_channels=c_out, in_channels=c_in, window=Window2D.square(kernel)),
        ["in"],
    )
    return g.layer("c")


def machine(spm_bytes=64 * 1024):
    npu = tiny_test_machine(1)
    cores = tuple(dataclasses.replace(c, spm_bytes=spm_bytes) for c in npu.cores)
    return dataclasses.replace(npu, cores=cores)


def tiles_cover(plan, region: Region):
    total = sum(t.out_region.num_elements for t in plan.tiles)
    assert total == region.num_elements
    for a in plan.tiles:
        assert region.contains(a.out_region)
        for b in plan.tiles:
            if a is not b:
                assert a.out_region.intersect(b.out_region).is_empty


class TestBasicTiling:
    def test_tiles_cover_region(self):
        layer = conv_layer()
        npu = machine()
        region = Region.full(layer.output_shape)
        plan = plan_tiles(layer, region, 0, npu)
        tiles_cover(plan, region)

    def test_empty_region_no_tiles(self):
        layer = conv_layer()
        npu = machine()
        from repro.ir import Interval

        empty = Region(Interval(0, 0), Interval(0, 0), Interval(0, 0))
        plan = plan_tiles(layer, empty, 0, npu)
        assert plan.num_tiles == 0

    def test_macs_sum(self):
        layer = conv_layer()
        npu = machine()
        region = Region.full(layer.output_shape)
        plan = plan_tiles(layer, region, 0, npu)
        assert sum(t.macs for t in plan.tiles) == layer.macs()

    def test_small_spm_forces_more_tiles(self):
        layer = conv_layer(h=64, w=64, c_out=32)
        big = plan_tiles(layer, Region.full(layer.output_shape), 0, machine(1 << 20))
        small = plan_tiles(layer, Region.full(layer.output_shape), 0, machine(16 * 1024))
        assert small.num_tiles >= big.num_tiles

    def test_resident_bytes_shrink_budget(self):
        layer = conv_layer(h=64, w=64, c_out=32)
        npu = machine(64 * 1024)
        region = Region.full(layer.output_shape)
        free = plan_tiles(layer, region, 0, npu)
        crowded = plan_tiles(layer, region, 0, npu, resident_bytes=48 * 1024)
        assert crowded.num_tiles >= free.num_tiles

    def test_forwarded_input_not_streamed(self):
        layer = conv_layer(h=64, w=64, c_out=32)
        npu = machine(24 * 1024)
        region = Region.full(layer.output_shape)
        streaming = plan_tiles(layer, region, 0, npu, input_stream_mask=[True])
        resident = plan_tiles(layer, region, 0, npu, input_stream_mask=[False])
        assert resident.num_tiles <= streaming.num_tiles


class TestSpmPressure:
    def test_double_buffered_tiles_fit(self):
        layer = conv_layer(h=64, w=64, c_out=32)
        npu = machine(24 * 1024)
        core = npu.core(0)
        region = Region.full(layer.output_shape)
        plan = plan_tiles(layer, region, 0, npu)
        if plan.num_tiles < 2:
            pytest.skip("no tiling happened")
        weights = aligned_weight_bytes(
            layer.op.weight_elements, layer.dtype, core
        )
        for tile in plan.tiles:
            in_bytes = aligned_region_bytes(
                layer.input_region(tile.out_region, 0), layer.dtype, core
            )
            out_bytes = aligned_region_bytes(tile.out_region, layer.dtype, core)
            assert weights + 2 * (in_bytes + out_bytes) <= core.spm_bytes * 1.25

    def test_impossible_fit_raises(self):
        layer = conv_layer(c_out=4)  # too few channels to slice on 'c'
        npu = machine(64)
        with pytest.raises(ValueError):
            plan_tiles(layer, Region.full(layer.output_shape), 0, npu)


class TestHaloFirst:
    def _plan(self, halo_first):
        layer = conv_layer(h=64, w=64)
        npu = machine(16 * 1024)
        region = Region.full(layer.output_shape)
        return plan_tiles(
            layer,
            region,
            0,
            npu,
            halo_first=halo_first,
            halo_at_start=True,
            halo_at_end=True,
        )

    def test_halo_flags_marked(self):
        plan = self._plan(halo_first=False)
        assert plan.num_tiles >= 2
        flags = [t.produces_halo for t in plan.tiles]
        assert flags[0] and flags[-1]
        assert not any(flags[1:-1])

    def test_halo_first_reorders(self):
        plan = self._plan(halo_first=True)
        k = sum(1 for t in plan.tiles if t.produces_halo)
        assert all(t.produces_halo for t in plan.tiles[:k])
        assert not any(t.produces_halo for t in plan.tiles[k:])
        # still covers the region after reordering.
        total = sum(t.out_region.num_elements for t in plan.tiles)
        assert total == 64 * 64 * 16

    def test_order_halo_first_stable(self):
        def tile(i, halo):
            from repro.ir import Interval

            return Tile(
                index=i,
                out_region=Region(Interval(i, i + 1), Interval(0, 1), Interval(0, 1)),
                macs=0,
                produces_halo=halo,
            )

        tiles = [tile(0, False), tile(1, True), tile(2, False), tile(3, True)]
        ordered = order_halo_first(tiles)
        assert [t.index for t in ordered] == [1, 3, 0, 2]


@settings(max_examples=50, deadline=None)
@given(
    h=st.integers(8, 64),
    c_out=st.integers(4, 32),
    spm_kb=st.sampled_from([8, 16, 64, 256]),
)
def test_property_tiles_always_cover(h, c_out, spm_kb):
    layer = conv_layer(h=h, w=h, c_out=c_out)
    npu = machine(spm_kb * 1024)
    region = Region.full(layer.output_shape)
    try:
        plan = plan_tiles(layer, region, 0, npu)
    except ValueError:
        return  # genuinely cannot fit; acceptable
    tiles_cover(plan, region)
    assert sum(t.macs for t in plan.tiles) == layer.macs()
