"""Serving metrics: latency percentiles, SLO compliance, utilization.

Clean runs produce the exact report schema this module always had;
degraded-mode runs (:mod:`repro.serve.degraded`) additionally attach a
:class:`DegradedStats` section and shed-request records.  The extra
keys appear in ``to_dict`` output only when a degradation section is
present, which keeps clean-path reports byte-identical whether or not
the fault machinery is importable, configured, or passed an empty plan.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.request import Request, RequestResult


def percentile(xs: Sequence[float], p: float) -> Optional[float]:
    """Linearly-interpolated percentile (p in [0, 100]); ``None`` on empty.

    Uses the inclusive "linear" method (numpy's default): the rank is
    ``p/100 * (n - 1)`` and fractional ranks interpolate between the two
    neighboring order statistics.  The nearest-rank method used before
    degenerates at small samples -- at n=19 every percentile above
    ~94.7% lands on the same (maximum) observation, so p95 == p99 and
    tail-latency comparisons go blind exactly where they matter.

    An empty sample has no order statistics, so the result is ``None``,
    never a number.  Returning ``0.0`` here (as this function once did)
    made an idle or dead fleet device report p99=0 and drag every
    fleet-level min/mean toward zero; ``None`` forces aggregators to
    exclude no-data devices explicitly.

    NaN inputs are rejected: ``sorted`` places NaNs arbitrarily (every
    comparison is False), so any order statistic over them would be an
    undefined value presented as a real percentile.
    """
    if not xs:
        return None
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    if any(x != x for x in xs):  # NaN is the only value that != itself
        raise ValueError("percentile over NaN input")
    ordered = sorted(xs)
    rank = (len(ordered) - 1) * (p / 100.0)
    lo = int(rank)
    frac = rank - lo
    if frac == 0.0 or lo + 1 >= len(ordered):
        return ordered[lo]
    return ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac


@dataclasses.dataclass(frozen=True)
class ShedRecord:
    """A request the degraded-mode server explicitly gave up on."""

    request: Request
    #: serving time at which the request was shed.
    shed_us: float
    #: why: ``"slo"`` (admission would hopelessly miss the SLO),
    #: ``"retries"`` (exhausted the retry budget), or ``"no-cores"``.
    reason: str

    def to_dict(self) -> Dict:
        return {
            "rid": self.request.rid,
            "model": self.request.model,
            "arrival_us": self.request.arrival_us,
            "slo_us": self.request.slo_us,
            "shed_us": self.shed_us,
            "reason": self.reason,
        }


@dataclasses.dataclass(frozen=True)
class DegradedStats:
    """The degradation section of a fault-injected serving report."""

    #: human-readable description of the injected fault plan.
    faults: str
    #: total re-executions (a request served on attempt 3 counts 2).
    num_retries: int
    #: waves that lost at least one request to a fault.
    num_failed_waves: int
    #: requests explicitly shed (SLO pressure or retry exhaustion).
    num_shed: int
    #: shed requests / all requests.
    shed_rate: float
    #: cores offline by the end of the run.
    dead_cores: Tuple[int, ...]
    #: compute cycles at reduced DVFS frequency / all compute cycles.
    throttled_fraction: float
    #: total start-delay cycles injected by stall windows.
    stall_cycles: float

    def to_dict(self) -> Dict:
        return {
            "faults": self.faults,
            "num_retries": self.num_retries,
            "num_failed_waves": self.num_failed_waves,
            "num_shed": self.num_shed,
            "shed_rate": self.shed_rate,
            "dead_cores": list(self.dead_cores),
            "throttled_fraction": self.throttled_fraction,
            "stall_cycles": self.stall_cycles,
        }


@dataclasses.dataclass(frozen=True)
class AdmissionRecord:
    """One continuous-mode admission: a request starting on freed cores."""

    rid: int
    #: serving time the request was admitted (its first commands start
    #: immediately -- the engines were idle).
    t_us: float
    #: the core group it was admitted onto.
    cores: Tuple[int, ...]
    #: queued requests at the admission instant (including this one).
    queue_len: int
    #: the full free-core set the policy chose from.
    free_cores: Tuple[int, ...]
    #: how long the slowest core of the group had been sitting free
    #: (includes ramp-up idle before the first admission touches it).
    backfill_us: float

    def to_dict(self) -> Dict:
        return {
            "rid": self.rid,
            "t_us": self.t_us,
            "cores": list(self.cores),
            "queue_len": self.queue_len,
            "free_cores": list(self.free_cores),
            "backfill_us": self.backfill_us,
        }


@dataclasses.dataclass(frozen=True)
class ContinuousStats:
    """The backfill-accounting section of a continuous-mode report.

    ``policy_stall_us`` is the work-conservation ledger: serving time
    that passed while at least one core sat free, the queue was
    non-empty, and the policy declined to admit anything.  The shipped
    policies keep it at exactly zero; a custom policy that waits shows
    up here instead of silently inflating queue times.
    """

    #: requests admitted (each admission is one injected program).
    num_admissions: int
    #: time cores idled with admissible work queued (0 = work-conserving).
    policy_stall_us: float
    #: per-core time not covered by any admitted request, over the makespan.
    core_idle_us: Tuple[float, ...]
    #: mean / max over admissions of how long the group sat free first.
    mean_backfill_us: float
    max_backfill_us: float
    #: the full admission trace, in admission order.
    admissions: Tuple[AdmissionRecord, ...] = dataclasses.field(
        default=(), repr=False
    )

    def to_dict(self, include_admissions: bool = False) -> Dict:
        out = {
            "num_admissions": self.num_admissions,
            "policy_stall_us": self.policy_stall_us,
            "core_idle_us": list(self.core_idle_us),
            "mean_backfill_us": self.mean_backfill_us,
            "max_backfill_us": self.max_backfill_us,
        }
        if include_admissions:
            out["admissions"] = [a.to_dict() for a in self.admissions]
        return out


@dataclasses.dataclass(frozen=True)
class ServeReport:
    """Aggregated outcome of serving one workload under one policy."""

    policy: str
    machine: str
    models: Tuple[str, ...]
    seed: int
    rps: float
    duration_us: float
    num_requests: int
    num_waves: int
    #: completion time of the last request (0 for an empty workload).
    makespan_us: float
    #: latency percentiles; ``None`` when no request was served (an
    #: idle or dead device has no latency distribution to summarize).
    p50_us: Optional[float]
    p95_us: Optional[float]
    p99_us: Optional[float]
    mean_latency_us: float
    mean_queue_us: float
    mean_exec_us: float
    slo_miss_rate: float
    #: completed requests per second of simulated time.
    throughput_rps: float
    #: busy fraction per core over the serving makespan.
    utilization: Tuple[float, ...]
    #: distinct merged programs built (each one verifier-clean).
    verified_programs: int
    results: Tuple[RequestResult, ...] = dataclasses.field(repr=False)
    #: degradation section; ``None`` on clean (fault-free) runs.
    degraded: Optional[DegradedStats] = None
    #: requests explicitly shed by the degraded-mode server.
    shed: Tuple[ShedRecord, ...] = ()
    #: backfill accounting; ``None`` on gang-scheduled runs.
    continuous: Optional[ContinuousStats] = None

    @property
    def mode(self) -> str:
        """Scheduling mode that produced this report."""
        return "continuous" if self.continuous is not None else "gang"

    @property
    def mean_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return sum(self.utilization) / len(self.utilization)

    def to_dict(self, include_requests: bool = False) -> Dict:
        out = {
            "policy": self.policy,
            "machine": self.machine,
            "models": list(self.models),
            "seed": self.seed,
            "rps": self.rps,
            "duration_us": self.duration_us,
            "num_requests": self.num_requests,
            "num_waves": self.num_waves,
            "makespan_us": self.makespan_us,
            # Percentile keys are omitted (not emitted as null) when no
            # request was served: a consumer that averages "p99_us"
            # across devices then cannot accidentally count a dead
            # device as a zero-latency one.
            **(
                {
                    "p50_us": self.p50_us,
                    "p95_us": self.p95_us,
                    "p99_us": self.p99_us,
                }
                if self.p50_us is not None
                else {}
            ),
            "mean_latency_us": self.mean_latency_us,
            "mean_queue_us": self.mean_queue_us,
            "mean_exec_us": self.mean_exec_us,
            "slo_miss_rate": self.slo_miss_rate,
            "throughput_rps": self.throughput_rps,
            "utilization": list(self.utilization),
            "mean_utilization": self.mean_utilization,
            "verified_programs": self.verified_programs,
        }
        # Degradation keys only exist on degraded reports, so clean
        # reports stay byte-identical to the pre-fault-injection schema.
        if self.degraded is not None:
            out["degraded"] = self.degraded.to_dict()
            out["shed_requests"] = [s.to_dict() for s in self.shed]
        # Likewise, the backfill section only exists on continuous-mode
        # reports, so gang reports keep the pre-continuous schema.
        if self.continuous is not None:
            out["mode"] = self.mode
            out["continuous"] = self.continuous.to_dict()
        if include_requests:
            out["requests"] = [
                {
                    "rid": r.request.rid,
                    "model": r.request.model,
                    "arrival_us": r.request.arrival_us,
                    "slo_us": r.request.slo_us,
                    "start_us": r.start_us,
                    "finish_us": r.finish_us,
                    "queue_us": r.queue_us,
                    "exec_us": r.exec_us,
                    "total_us": r.total_us,
                    "slo_met": r.slo_met,
                    "cores": list(r.cores),
                    "wave": r.wave,
                    **({"attempts": r.attempts} if self.degraded is not None else {}),
                }
                for r in self.results
            ]
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def build_report(
    policy: str,
    machine: str,
    models: Sequence[str],
    seed: int,
    rps: float,
    duration_us: float,
    results: Sequence[RequestResult],
    num_waves: int,
    busy_cycles: Sequence[float],
    makespan_cycles: float,
    latency_us_per_cycle: float,
    verified_programs: int,
    degraded: Optional[DegradedStats] = None,
    shed: Sequence[ShedRecord] = (),
    continuous: Optional[ContinuousStats] = None,
) -> ServeReport:
    """Aggregate per-request results into a :class:`ServeReport`."""
    totals = [r.total_us for r in results]
    queues = [r.queue_us for r in results]
    execs = [r.exec_us for r in results]
    with_slo = [r for r in results if r.request.slo_us > 0]
    missed = sum(1 for r in with_slo if not r.slo_met)
    makespan_us = makespan_cycles * latency_us_per_cycle
    # Clamped to [0, 1]: under fault injection a command can be charged
    # to a core (retry accounting) while the makespan is measured on the
    # surviving timeline, so raw busy/makespan can exceed 1.
    utilization = tuple(
        min(1.0, max(0.0, busy / makespan_cycles)) if makespan_cycles > 0 else 0.0
        for busy in busy_cycles
    )
    return ServeReport(
        policy=policy,
        machine=machine,
        models=tuple(models),
        seed=seed,
        rps=rps,
        duration_us=duration_us,
        num_requests=len(results),
        num_waves=num_waves,
        makespan_us=makespan_us,
        p50_us=percentile(totals, 50),
        p95_us=percentile(totals, 95),
        p99_us=percentile(totals, 99),
        mean_latency_us=sum(totals) / len(totals) if totals else 0.0,
        mean_queue_us=sum(queues) / len(queues) if queues else 0.0,
        mean_exec_us=sum(execs) / len(execs) if execs else 0.0,
        slo_miss_rate=missed / len(with_slo) if with_slo else 0.0,
        throughput_rps=(len(results) / makespan_us * 1e6) if makespan_us > 0 else 0.0,
        utilization=utilization,
        verified_programs=verified_programs,
        results=tuple(results),
        degraded=degraded,
        shed=tuple(shed),
        continuous=continuous,
    )


def results_sorted(results: Sequence[RequestResult]) -> List[RequestResult]:
    """Results in request-id order (waves complete out of order)."""
    return sorted(results, key=lambda r: r.request.rid)
