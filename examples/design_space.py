#!/usr/bin/env python
"""Hardware/software co-design exploration with the simulator.

The machine description is just a dataclass, so architectural what-ifs
are one `dataclasses.replace` away.  This example asks three questions
the paper's platform team would ask about the next chip, using
MobileNetV2 under the full optimization stack:

1. How much SPM do the optimizations actually need?
2. What does doubling the bus (DRAM) bandwidth buy?
3. How expensive may synchronization get before strata become mandatory?
"""

import dataclasses

from repro.analysis import format_table
from repro.compiler import CompileOptions, compile_model
from repro.hw import exynos2100_like
from repro.models import get_model
from repro.sim import simulate


def with_spm(npu, spm_bytes):
    cores = tuple(dataclasses.replace(c, spm_bytes=spm_bytes) for c in npu.cores)
    return dataclasses.replace(npu, cores=cores, name=f"spm={spm_bytes >> 10}KB")


def with_bus(npu, factor):
    cores = tuple(
        dataclasses.replace(c, dma_bytes_per_cycle=c.dma_bytes_per_cycle * factor)
        for c in npu.cores
    )
    return dataclasses.replace(
        npu,
        cores=cores,
        bus_bytes_per_cycle=npu.bus_bytes_per_cycle * factor,
        name=f"bus x{factor}",
    )


def with_sync(npu, factor):
    return dataclasses.replace(
        npu,
        sync_base_cycles=int(npu.sync_base_cycles * factor),
        sync_jitter_cycles=int(npu.sync_jitter_cycles * factor),
        name=f"sync x{factor}",
    )


def run(graph, npu, options):
    compiled = compile_model(graph, npu, options)
    result = simulate(compiled.program, npu)
    return result.latency_us, compiled


def sweep(graph, variants, options, title):
    rows = []
    for npu in variants:
        latency, compiled = run(graph, npu, options)
        rows.append(
            [
                npu.name,
                f"{latency:,.1f}us",
                len(compiled.strata.strata),
                compiled.num_forwarded_edges(),
                compiled.num_barriers,
            ]
        )
    print()
    print(
        format_table(
            ["Machine", "Latency", "Strata", "Forwarded", "Barriers"],
            rows,
            title=title,
        )
    )


def main():
    graph = get_model("MobileNetV2")
    base = exynos2100_like()
    full = CompileOptions.stratum_config()

    sweep(
        graph,
        [with_spm(base, kb << 10) for kb in (128, 512, 2048, 8192)],
        full,
        "1) SPM sensitivity (feature-map forwarding and strata need room)",
    )
    sweep(
        graph,
        [with_bus(base, f) for f in (0.5, 1, 2, 4)],
        full,
        "2) Bus bandwidth sensitivity (MobileNetV2 is memory-hungry)",
    )
    print()
    rows = []
    for factor in (0.25, 1, 4, 16):
        npu = with_sync(base, factor)
        lat_base, _ = run(graph, npu, CompileOptions.base())
        lat_full, compiled = run(graph, npu, full)
        rows.append(
            [
                npu.name,
                f"{lat_base:,.1f}us",
                f"{lat_full:,.1f}us",
                f"{lat_base / lat_full:.2f}x",
                len(compiled.strata.strata),
            ]
        )
    print(
        format_table(
            ["Machine", "Base", "+Stratum stack", "gain", "strata"],
            rows,
            title="3) Sync-cost sensitivity (the pricier the sync, the more the "
            "paper's optimizations matter)",
        )
    )


if __name__ == "__main__":
    main()
