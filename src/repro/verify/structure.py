"""Structure pass: well-formedness and deadlock freedom (RPR2xx).

Re-checks, without raising, everything :meth:`Program.validate` would
reject -- and goes further: it runs a full topological sort over the
union of dependency edges and per-engine queue order, so a dependency
cycle that only materialises *through* a hardware queue (command A waits
on B, while B sits behind A in its engine queue) is detected as the
deadlock it would be on silicon.

Codes:

* ``RPR201`` -- dangling dependency id (no such command)
* ``RPR202`` -- self-dependency
* ``RPR203`` -- dependency/queue cycle (deadlock)
* ``RPR204`` -- duplicate command id
* ``RPR205`` -- core index outside the machine
* ``RPR206`` -- payload on the wrong command kind (bytes on compute,
  MACs on DMA, negative values)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compiler.program import CommandKind, Engine, Program
from repro.verify.diagnostics import PassResult, Severity


def check_structure(program: Program) -> PassResult:
    """Run the structure pass over ``program``."""
    result = PassResult(name="structure")
    commands = program.commands
    n = len(commands)

    all_ids = {c.cid for c in commands}
    seen_ids: Dict[int, int] = {}
    for pos, cmd in enumerate(commands):
        if cmd.cid in seen_ids:
            result.emit(
                "RPR204",
                f"command id {cmd.cid} at position {pos} already used at "
                f"position {seen_ids[cmd.cid]}",
                layer=cmd.layer,
                core=cmd.core,
                cid=cmd.cid,
                hint="command ids must be dense and unique (builder assigns them)",
            )
        else:
            seen_ids[cmd.cid] = pos
        if not 0 <= cmd.core < program.num_cores:
            result.emit(
                "RPR205",
                f"core index {cmd.core} outside machine with "
                f"{program.num_cores} core(s)",
                layer=cmd.layer,
                cid=cmd.cid,
            )
        for dep in cmd.deps:
            if dep == cmd.cid:
                result.emit(
                    "RPR202",
                    "command depends on itself",
                    layer=cmd.layer,
                    core=cmd.core,
                    cid=cmd.cid,
                )
            elif dep not in all_ids:
                result.emit(
                    "RPR201",
                    f"dependency {dep} does not name any command",
                    layer=cmd.layer,
                    core=cmd.core,
                    cid=cmd.cid,
                    hint="a command was removed without patching its consumers",
                )
            elif dep > cmd.cid:
                result.emit(
                    "RPR201",
                    f"dependency {dep} points forward past command {cmd.cid}",
                    severity=Severity.WARNING,
                    layer=cmd.layer,
                    core=cmd.core,
                    cid=cmd.cid,
                    hint="the builder only emits backward edges; forward edges "
                    "deadlock when both commands share an engine queue",
                )
        _check_payload(result, cmd)

    _check_cycles(result, program)
    result.stats["commands"] = n
    result.stats["edges"] = sum(len(c.deps) for c in commands)
    return result


def _check_payload(result: PassResult, cmd) -> None:
    if cmd.is_dma:
        if cmd.num_bytes < 0:
            result.emit(
                "RPR206",
                f"negative byte count {cmd.num_bytes}",
                layer=cmd.layer,
                core=cmd.core,
                cid=cmd.cid,
            )
        if cmd.macs:
            result.emit(
                "RPR206",
                f"DMA command carries {cmd.macs} MACs",
                layer=cmd.layer,
                core=cmd.core,
                cid=cmd.cid,
            )
    elif cmd.kind is CommandKind.COMPUTE:
        if cmd.macs < 0:
            result.emit(
                "RPR206",
                f"negative MAC count {cmd.macs}",
                layer=cmd.layer,
                core=cmd.core,
                cid=cmd.cid,
            )
        if cmd.num_bytes:
            result.emit(
                "RPR206",
                f"compute command carries {cmd.num_bytes} bytes of DMA payload",
                layer=cmd.layer,
                core=cmd.core,
                cid=cmd.cid,
            )
    else:  # BARRIER
        if cmd.num_bytes or cmd.macs:
            result.emit(
                "RPR206",
                "barrier command carries a DMA/compute payload",
                layer=cmd.layer,
                core=cmd.core,
                cid=cmd.cid,
            )
    if cmd.cycles < 0:
        result.emit(
            "RPR206",
            f"negative fixed latency {cmd.cycles}",
            layer=cmd.layer,
            core=cmd.core,
            cid=cmd.cid,
        )


def _check_cycles(result: PassResult, program: Program) -> None:
    """Kahn's algorithm over dependency edges + engine queue order."""
    commands = program.commands
    n = len(commands)
    index = {c.cid: i for i, c in enumerate(commands)}

    succs: List[List[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    tails: Dict[Tuple[int, Engine], int] = {}
    for i, cmd in enumerate(commands):
        for dep in cmd.deps:
            j = index.get(dep)
            if j is None or j == i:
                continue  # dangling/self deps already reported
            succs[j].append(i)
            indeg[i] += 1
        queue = (cmd.core, cmd.engine)
        tail = tails.get(queue)
        if tail is not None:
            succs[tail].append(i)
            indeg[i] += 1
        tails[queue] = i

    ready = [i for i in range(n) if indeg[i] == 0]
    done = 0
    while ready:
        i = ready.pop()
        done += 1
        for j in succs[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if done < n:
        stuck = [commands[i] for i in range(n) if indeg[i] > 0]
        sample = ", ".join(f"#{c.cid}" for c in stuck[:6])
        result.emit(
            "RPR203",
            f"{len(stuck)} command(s) can never start "
            f"(dependency/queue cycle): {sample}",
            severity=Severity.ERROR,
            layer=stuck[0].layer,
            core=stuck[0].core,
            cid=stuck[0].cid,
            hint="a dependency points forward across an engine queue, "
            "forming a wait cycle with program order",
        )
