"""The benchmark model zoo: Table 2 of the paper."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

from repro.ir.dtypes import DataType
from repro.ir.graph import Graph
from repro.models.deeplab_v3plus import deeplab_v3plus
from repro.models.inception_v3 import inception_v3
from repro.models.mobiledet_ssd import mobiledet_ssd
from repro.models.mobilenet_v2 import mobilenet_v2
from repro.models.mobilenet_v2_ssd import mobilenet_v2_ssd
from repro.models.unet import unet


@dataclasses.dataclass(frozen=True)
class ModelInfo:
    """One row of the paper's Table 2."""

    name: str
    category: str
    input_size: Tuple[int, int, int]
    dtype: DataType
    factory: Callable[[], Graph]


#: Table 2 of the paper, in its row order.
ZOO: Tuple[ModelInfo, ...] = (
    ModelInfo(
        name="InceptionV3",
        category="Classification",
        input_size=(299, 299, 3),
        dtype=DataType.INT8,
        factory=inception_v3,
    ),
    ModelInfo(
        name="MobileNetV2",
        category="Classification",
        input_size=(224, 224, 3),
        dtype=DataType.INT8,
        factory=mobilenet_v2,
    ),
    ModelInfo(
        name="MobileNetV2-SSD",
        category="Object detection",
        input_size=(300, 300, 3),
        dtype=DataType.INT8,
        factory=mobilenet_v2_ssd,
    ),
    ModelInfo(
        name="MobileDet-SSD",
        category="Object detection",
        input_size=(320, 320, 3),
        dtype=DataType.INT8,
        factory=mobiledet_ssd,
    ),
    ModelInfo(
        name="DeepLabV3+",
        category="Segmentation",
        input_size=(513, 513, 3),
        dtype=DataType.INT16,
        factory=deeplab_v3plus,
    ),
    ModelInfo(
        name="UNet",
        category="Segmentation",
        input_size=(572, 572, 3),
        dtype=DataType.INT8,
        factory=unet,
    ),
)

_BY_NAME: Dict[str, ModelInfo] = {m.name.lower(): m for m in ZOO}


def model_names() -> List[str]:
    return [m.name for m in ZOO]


def get_model(name: str) -> Graph:
    """Build a zoo model by (case-insensitive) name."""
    key = name.lower()
    if key not in _BY_NAME:
        raise KeyError(f"unknown model {name!r}; known: {model_names()}")
    return _BY_NAME[key].factory()


def get_info(name: str) -> ModelInfo:
    key = name.lower()
    if key not in _BY_NAME:
        raise KeyError(f"unknown model {name!r}; known: {model_names()}")
    return _BY_NAME[key]
