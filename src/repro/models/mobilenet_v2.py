"""MobileNetV2 (Sandler et al., 2018) -- 224x224x3, INT8 (paper Table 2).

The standard width-1.0 configuration: initial 3x3/2 convolution, 17
inverted-residual blocks following the (expansion, channels, repeats,
stride) table of the paper, the final 1x1 convolution to 1280 channels,
global pooling and the classifier.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.dtypes import DataType
from repro.ir.graph import Graph
from repro.models.builder import GraphBuilder

#: (expansion t, output channels c, repeats n, first stride s)
INVERTED_RESIDUAL_SETTINGS: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def backbone(
    b: GraphBuilder,
    x: str,
    settings: Tuple[Tuple[int, int, int, int], ...] = INVERTED_RESIDUAL_SETTINGS,
    dilate_after_stride: int = 0,
) -> List[str]:
    """MobileNetV2 feature extractor; returns the output of every block.

    ``dilate_after_stride``: when nonzero, strides beyond this cumulative
    output stride are converted to dilation (the atrous trick DeepLabV3+
    uses to keep output stride 16).
    """
    y = b.conv(x, 32, kernel=3, stride=2, activation="relu6", name="stem_conv")
    outputs = [y]
    block = 0
    current_stride = 2
    dilation = 1
    for t, c, n, s in settings:
        for i in range(n):
            stride = s if i == 0 else 1
            if dilate_after_stride and stride > 1:
                if current_stride >= dilate_after_stride:
                    dilation *= stride
                    stride = 1
                else:
                    current_stride *= stride
            y = b.inverted_residual(
                y,
                out_channels=c,
                expansion=t,
                stride=stride,
                dilation=dilation if stride == 1 else 1,
                prefix=f"block{block}",
            )
            outputs.append(y)
            block += 1
    return outputs


def mobilenet_v2(num_classes: int = 1000, input_size: int = 224) -> Graph:
    """Full MobileNetV2 classifier graph."""
    b = GraphBuilder("mobilenet_v2", dtype=DataType.INT8)
    x = b.input(input_size, input_size, 3, name="image")
    features = backbone(b, x)
    y = b.conv(features[-1], 1280, kernel=1, activation="relu6", name="head_conv")
    y = b.global_avgpool(y, name="pool")
    y = b.dense(y, num_classes, name="logits")
    b.softmax(y, name="predictions")
    return b.build()
