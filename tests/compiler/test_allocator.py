"""Forwarding / halo-exchange decisions per consumed edge."""

import dataclasses


from repro.compiler import CompileOptions, compile_model
from repro.compiler.allocator import InputMode
from repro.hw import tiny_test_machine

from tests.conftest import make_chain_graph, make_mixed_graph


def roomy_machine(cores=2):
    npu = tiny_test_machine(cores)
    big = tuple(
        dataclasses.replace(c, spm_bytes=16 * 1024 * 1024) for c in npu.cores
    )
    return dataclasses.replace(npu, cores=big)


class TestModeProperties:
    def test_forwarding_flags(self):
        assert InputMode.FORWARD.is_forwarding
        assert InputMode.FORWARD_HALO.is_forwarding
        assert not InputMode.GLOBAL_HALO.is_forwarding
        assert not InputMode.GLOBAL.is_forwarding

    def test_halo_flags(self):
        assert InputMode.FORWARD_HALO.uses_halo
        assert InputMode.GLOBAL_HALO.uses_halo
        assert not InputMode.FORWARD.uses_halo

    def test_barrier_flags(self):
        assert InputMode.GLOBAL.needs_barrier
        assert not InputMode.GLOBAL_HALO.needs_barrier
        assert not InputMode.FORWARD.needs_barrier


class TestBaseDecisions:
    def test_base_is_all_global(self):
        g = make_mixed_graph()
        m = compile_model(g, roomy_machine(), CompileOptions.base())
        for decision in m.forwarding.decisions.values():
            assert decision.mode is InputMode.GLOBAL

    def test_base_stores_everything(self):
        g = make_mixed_graph()
        m = compile_model(g, roomy_machine(), CompileOptions.base())
        for layer in g.layers():
            if not layer.is_input:
                assert m.forwarding.stores[layer.name]


class TestHaloDecisions:
    def test_adjacent_spatial_pair_forwards_with_halo(self):
        g = make_chain_graph()
        m = compile_model(g, roomy_machine(), CompileOptions.halo())
        d = m.forwarding.decision("c3", 0)
        assert d.mode is InputMode.FORWARD_HALO
        assert d.producer == "c2"

    def test_input_layer_edge_stays_global(self):
        g = make_chain_graph()
        m = compile_model(g, roomy_machine(), CompileOptions.halo())
        assert m.forwarding.input_mode("c1", 0) is InputMode.GLOBAL

    def test_spm_pressure_degrades_to_global_halo(self):
        g = make_chain_graph()
        npu = tiny_test_machine(2)
        cramped = dataclasses.replace(
            npu,
            cores=tuple(
                dataclasses.replace(c, spm_bytes=2 * 1024) for c in npu.cores
            ),
        )
        m = compile_model(g, cramped, CompileOptions.halo())
        d = m.forwarding.decision("c3", 0)
        # no room to keep c2 resident, but the exchange still applies.
        assert d.mode is InputMode.GLOBAL_HALO

    def test_forwarded_producer_may_skip_store(self):
        g = make_chain_graph()
        m = compile_model(g, roomy_machine(), CompileOptions.halo())
        # c2's only consumer forwards from it -> no store to global.
        assert not m.forwarding.stores["c2"]
        # the network output always stores.
        assert m.forwarding.stores["c3"]

    def test_pieces_cover_halo(self):
        g = make_chain_graph()
        m = compile_model(g, roomy_machine(), CompileOptions.halo())
        d = m.forwarding.decision("c3", 0)
        esize = g.layer("c2").dtype.size_bytes
        # Both cores receive a positive number of boundary bytes.
        for core in range(2):
            assert d.recv_bytes(core, esize) > 0
            assert d.send_bytes(core, esize) > 0

    def test_recv_equals_peer_sends(self):
        g = make_chain_graph()
        npu = roomy_machine(3)
        m = compile_model(g, npu, CompileOptions.halo())
        d = m.forwarding.decision("c3", 0)
        esize = 1
        total_recv = sum(d.recv_bytes(c, esize) for c in range(3))
        total_send = sum(d.send_bytes(c, esize) for c in range(3))
        assert total_recv == total_send > 0


class TestStratumDecisions:
    def test_interior_edges_forward(self):
        g = make_chain_graph()
        npu = dataclasses.replace(roomy_machine(3), sync_base_cycles=20000)
        m = compile_model(g, npu, CompileOptions.stratum_config())
        assert len(m.strata.strata) == 1
        assert m.forwarding.input_mode("c2", 0) is InputMode.FORWARD
        assert m.forwarding.input_mode("c3", 0) is InputMode.FORWARD

    def test_interior_layers_do_not_store(self):
        g = make_chain_graph()
        npu = dataclasses.replace(roomy_machine(3), sync_base_cycles=20000)
        m = compile_model(g, npu, CompileOptions.stratum_config())
        assert not m.forwarding.stores["c1"]
        assert not m.forwarding.stores["c2"]
        assert m.forwarding.stores["c3"]
