"""Workload balancing across heterogeneous cores."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import CoreConfig, NPUConfig, exynos2100_like, tiny_test_machine
from repro.ir import Conv2D, Graph, Input, TensorShape, Window2D
from repro.partition import PartitionDirection, balance_intervals, balance_weights


def conv_layer(h=32, c_in=8, c_out=32, kernel=3):
    g = Graph("g")
    g.add("in", Input(TensorShape(h, h, c_in)))
    g.add(
        "c",
        Conv2D(out_channels=c_out, in_channels=c_in, window=Window2D.square(kernel)),
        ["in"],
    )
    return g.layer("c")


def lopsided_machine() -> NPUConfig:
    fast = CoreConfig(
        name="fast", macs_per_cycle=256, dma_bytes_per_cycle=16.0,
        spm_bytes=64 * 1024, channel_alignment=4, spatial_alignment=1,
        compute_efficiency=1.0,
    )
    slow = CoreConfig(
        name="slow", macs_per_cycle=64, dma_bytes_per_cycle=4.0,
        spm_bytes=64 * 1024, channel_alignment=4, spatial_alignment=1,
        compute_efficiency=1.0,
    )
    return NPUConfig(name="lop", cores=(fast, slow), bus_bytes_per_cycle=20.0)


class TestWeights:
    def test_equal_cores_equal_weights(self):
        npu = tiny_test_machine(3)
        w = balance_weights(conv_layer(), PartitionDirection.SPATIAL, npu)
        assert w[0] == pytest.approx(w[1])
        assert w[1] == pytest.approx(w[2])

    def test_faster_core_gets_more(self):
        npu = lopsided_machine()
        w = balance_weights(conv_layer(), PartitionDirection.SPATIAL, npu)
        assert w[0] > w[1]


class TestIntervals:
    def test_covers_output(self):
        npu = tiny_test_machine(3)
        layer = conv_layer()
        ivs = balance_intervals(layer, PartitionDirection.SPATIAL, npu)
        assert ivs[0].start == 0
        assert ivs[-1].stop == layer.output_shape.h

    def test_channel_covers_output(self):
        npu = tiny_test_machine(3)
        layer = conv_layer(c_out=48)
        ivs = balance_intervals(layer, PartitionDirection.CHANNEL, npu)
        assert ivs[-1].stop == layer.output_shape.c

    def test_none_direction_rejected(self):
        npu = tiny_test_machine(2)
        with pytest.raises(ValueError):
            balance_intervals(conv_layer(), PartitionDirection.NONE, npu)

    def test_faster_core_gets_more_rows(self):
        npu = lopsided_machine()
        layer = conv_layer(h=40)
        ivs = balance_intervals(layer, PartitionDirection.SPATIAL, npu)
        assert ivs[0].length > ivs[1].length

    def test_channel_alignment_respected(self):
        npu = exynos2100_like()  # channel alignment up to 32
        layer = conv_layer(c_out=160)
        ivs = balance_intervals(layer, PartitionDirection.CHANNEL, npu)
        nonempty = [iv for iv in ivs if not iv.is_empty]
        for iv in nonempty[:-1]:
            assert iv.start % 32 == 0

    def test_balance_quality_on_heterogeneous_machine(self):
        """Per-core compute time imbalance stays moderate after alignment."""
        npu = exynos2100_like()
        layer = conv_layer(h=64, c_out=64)
        ivs = balance_intervals(layer, PartitionDirection.SPATIAL, npu)
        times = []
        for core_index, iv in enumerate(ivs):
            if iv.is_empty:
                continue
            macs_share = layer.macs() * iv.length / layer.output_shape.h
            times.append(macs_share / npu.core(core_index).effective_macs_per_cycle)
        assert max(times) / min(times) < 1.6


@settings(max_examples=40, deadline=None)
@given(
    h=st.integers(8, 64),
    c_out=st.integers(8, 64),
    direction=st.sampled_from([PartitionDirection.SPATIAL, PartitionDirection.CHANNEL]),
)
def test_property_intervals_tile_axis(h, c_out, direction):
    npu = tiny_test_machine(3)
    layer = conv_layer(h=h, c_out=c_out)
    ivs = balance_intervals(layer, direction, npu)
    total = layer.output_shape.h if direction is PartitionDirection.SPATIAL else layer.output_shape.c
    assert sum(iv.length for iv in ivs) == total
    for a, b in zip(ivs, ivs[1:]):
        assert a.stop == b.start
