"""Data types supported by the NPU and their storage properties.

The paper's benchmark networks run quantized: most models use INT8 while
DeepLabV3+ uses INT16 (Table 2).  The data type matters to the machine model
only through the element size -- it scales every DMA transfer, SPM footprint,
and alignment computation.
"""

from __future__ import annotations

import enum

import numpy as np


class DataType(enum.Enum):
    """Element type of a tensor as stored in NPU memories."""

    INT8 = "int8"
    INT16 = "int16"
    INT32 = "int32"
    FP16 = "fp16"
    FP32 = "fp32"

    @property
    def size_bytes(self) -> int:
        """Storage size of one element in bytes."""
        return _SIZE_BYTES[self]

    @property
    def numpy_dtype(self) -> np.dtype:
        """NumPy dtype used by the functional (reference) executor.

        Quantized types are widened to float64 for reference execution: the
        repo validates *indexing semantics* (partitioning, halo, stratum
        math), not quantized rounding behaviour, so exact arithmetic in a
        wide type is the right oracle.
        """
        return np.dtype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


_SIZE_BYTES = {
    DataType.INT8: 1,
    DataType.INT16: 2,
    DataType.INT32: 4,
    DataType.FP16: 2,
    DataType.FP32: 4,
}
