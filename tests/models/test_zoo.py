"""Model zoo: structure, shapes, arithmetic of the six Table 2 networks."""

import pytest

from repro.ir import DataType, TensorShape
from repro.models import (
    ZOO,
    get_info,
    get_model,
    inception_v3,
    inception_v3_stem,
    mobilenet_v2,
    model_names,
    unet,
)
from repro.models.inception_v3 import STEM_LAYERS


class TestRegistry:
    def test_six_models(self):
        assert len(ZOO) == 6
        assert model_names() == [
            "InceptionV3",
            "MobileNetV2",
            "MobileNetV2-SSD",
            "MobileDet-SSD",
            "DeepLabV3+",
            "UNet",
        ]

    def test_case_insensitive_lookup(self):
        assert get_info("inceptionv3").name == "InceptionV3"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("ResNet50")

    def test_table2_dtypes(self):
        assert get_info("DeepLabV3+").dtype is DataType.INT16
        for name in ("InceptionV3", "MobileNetV2", "UNet"):
            assert get_info(name).dtype is DataType.INT8

    def test_table2_input_sizes(self):
        expected = {
            "InceptionV3": (299, 299, 3),
            "MobileNetV2": (224, 224, 3),
            "MobileNetV2-SSD": (300, 300, 3),
            "MobileDet-SSD": (320, 320, 3),
            "DeepLabV3+": (513, 513, 3),
            "UNet": (572, 572, 3),
        }
        for name, size in expected.items():
            info = get_info(name)
            assert info.input_size == size
            graph = info.factory()
            assert graph.inputs()[0].output_shape == TensorShape(*size)

    def test_all_models_validate(self):
        for info in ZOO:
            info.factory().validate()


class TestInceptionV3:
    def test_published_macs(self):
        """InceptionV3 is ~5.7 GMACs at 299x299."""
        g = inception_v3()
        assert 5.0e9 < g.total_macs() < 6.5e9

    def test_published_weights(self):
        """~23.8M parameters."""
        g = inception_v3()
        assert 22e6 < g.total_weight_bytes() < 26e6  # INT8: bytes == params

    def test_feature_map_sizes(self):
        g = inception_v3()
        assert g.layer("stem_pool1").output_shape == TensorShape(35, 35, 192)
        assert g.layer("mixed5b_concat").output_shape == TensorShape(35, 35, 256)
        assert g.layer("mixed5d_concat").output_shape == TensorShape(35, 35, 288)
        assert g.layer("mixed6a_concat").output_shape == TensorShape(17, 17, 768)
        assert g.layer("mixed6e_concat").output_shape == TensorShape(17, 17, 768)
        assert g.layer("mixed7a_concat").output_shape == TensorShape(8, 8, 1280)
        assert g.layer("mixed7c_concat").output_shape == TensorShape(8, 8, 2048)
        assert g.layer("logits").output_shape == TensorShape(1, 1, 1000)

    def test_stem_subgraph(self):
        stem = inception_v3_stem()
        stem.validate()
        assert stem.layer("stem_pool1").output_shape == TensorShape(35, 35, 192)
        for name in STEM_LAYERS:
            assert name in stem


class TestMobileNetV2:
    def test_published_macs(self):
        """~0.3 GMACs at 224x224."""
        g = mobilenet_v2()
        assert 0.25e9 < g.total_macs() < 0.35e9

    def test_published_weights(self):
        """~3.5M parameters."""
        g = mobilenet_v2()
        assert 3.0e6 < g.total_weight_bytes() < 4.2e6

    def test_final_feature_map(self):
        g = mobilenet_v2()
        assert g.layer("head_conv").output_shape == TensorShape(7, 7, 1280)

    def test_residual_adds_present(self):
        g = mobilenet_v2()
        adds = [l for l in g.layers() if l.op.type_name == "Add"]
        assert len(adds) == 10  # 10 identity residuals in the standard net


class TestDetectors:
    def test_ssd_has_multiple_outputs(self):
        g = get_model("MobileNetV2-SSD")
        # 6 feature maps x (box + cls) heads.
        assert len(g.outputs()) == 12

    def test_ssd_feature_pyramid(self):
        g = get_model("MobileNetV2-SSD")
        assert g.layer("block13_expand").output_shape.h == 19
        assert g.layer("head_conv").output_shape.h == 10
        assert g.layer("extra0_3x3").output_shape.h == 5
        assert g.layer("extra3_3x3").output_shape.h == 1

    def test_mobiledet_pyramid(self):
        g = get_model("MobileDet-SSD")
        assert g.layer("s3b3_add").output_shape.h == 20
        assert g.layer("head_conv").output_shape.h == 10
        assert len(g.outputs()) == 12


class TestDeepLab:
    def test_output_stride_16_backbone(self):
        g = get_model("DeepLabV3+")
        # 513 / 16 -> 33 with SAME striding.
        assert g.layer("aspp_concat").output_shape.h == 33

    def test_full_resolution_output(self):
        g = get_model("DeepLabV3+")
        (out,) = g.outputs()
        assert out.output_shape.h == 513
        assert out.output_shape.c == 21

    def test_uses_dilation(self):
        g = get_model("DeepLabV3+")
        rates = {
            l.op.window.dilation_h
            for l in g.layers()
            if l.op.type_name == "Conv2D"
        }
        assert {6, 12, 18} <= rates

    def test_int16(self):
        g = get_model("DeepLabV3+")
        assert all(l.dtype is DataType.INT16 for l in g.layers())


class TestUNet:
    def test_original_geometry(self):
        """The famous 572 -> 388 shape walk of the original paper."""
        g = unet()
        assert g.layer("enc0_conv1").output_shape == TensorShape(568, 568, 64)
        assert g.layer("enc3_conv1").output_shape == TensorShape(64, 64, 512)
        assert g.layer("bottleneck_conv1").output_shape == TensorShape(28, 28, 1024)
        (out,) = g.outputs()
        assert out.output_shape == TensorShape(388, 388, 2)

    def test_skip_crops_match(self):
        g = unet()
        for i in range(4):
            crop = g.layer(f"dec{i}_crop")
            up = g.layer(f"dec{i}_up")
            assert crop.output_shape.h == up.output_shape.h

    def test_heaviest_model(self):
        g = unet()
        assert g.total_macs() > 50e9
