"""Parse ``--faults`` command-line specs into a :class:`FaultPlan`.

Grammar (comma-separated fault clauses):

* ``core_offline@50%``        -- core 0 dies at 50% of the duration
* ``core_offline:2@1200us``   -- core 2 dies at 1200 us
* ``stall@10%+500us``         -- core 0 stalls from 10% for 500 us
* ``stall:1@100us+5%``        -- core 1 stalls; ``stall:bus@...`` stalls the bus
* ``throttle``                -- thermal DVFS stepping on every core
* ``throttle:0+2``            -- only on cores 0 and 2

Times are either absolute microseconds (``1200us``, ``1.2ms``) or a
percentage of the serving duration (``50%``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.faults.plan import (
    CoreOffline,
    FaultEvent,
    FaultPlan,
    ThermalThrottle,
    TransientStall,
)


def _parse_time(text: str, duration_us: float, what: str) -> float:
    text = text.strip()
    try:
        if text.endswith("%"):
            return float(text[:-1]) / 100.0 * duration_us
        if text.endswith("us"):
            return float(text[:-2])
        if text.endswith("ms"):
            return float(text[:-2]) * 1000.0
        return float(text)
    except ValueError:
        raise ValueError(
            f"bad {what} {text!r}: expected e.g. '50%', '1200us', or '1.2ms'"
        ) from None


def _parse_core(text: str, num_cores: int, what: str) -> int:
    try:
        core = int(text)
    except ValueError:
        raise ValueError(f"bad {what} core {text!r}") from None
    if not 0 <= core < num_cores:
        raise ValueError(f"{what} core {core} out of range (machine has {num_cores})")
    return core


def parse_fault_spec(
    spec: str,
    duration_us: float,
    num_cores: int,
    seed: int = 0,
) -> FaultPlan:
    """Parse one ``--faults`` string against a workload duration."""
    events: List[FaultEvent] = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        head, _, when = clause.partition("@")
        kind, _, arg = head.partition(":")
        kind = kind.strip()
        if kind == "core_offline":
            core = _parse_core(arg, num_cores, "core_offline") if arg else 0
            if not when:
                raise ValueError(
                    f"{clause!r}: core_offline needs '@<time>' (e.g. '@50%')"
                )
            events.append(
                CoreOffline(core=core, at_us=_parse_time(when, duration_us, "time"))
            )
        elif kind == "stall":
            target: Optional[int]
            if not arg or arg == "bus":
                target = None if arg == "bus" else 0
            else:
                target = _parse_core(arg, num_cores, "stall")
            start_text, _, dur_text = when.partition("+")
            if not start_text or not dur_text:
                raise ValueError(
                    f"{clause!r}: stall needs '@<start>+<duration>' "
                    f"(e.g. '@10%+500us')"
                )
            events.append(
                TransientStall(
                    start_us=_parse_time(start_text, duration_us, "stall start"),
                    duration_us=_parse_time(dur_text, duration_us, "stall duration"),
                    core=target,
                )
            )
        elif kind == "throttle":
            cores: Tuple[int, ...] = ()
            if arg:
                cores = tuple(
                    _parse_core(c, num_cores, "throttle") for c in arg.split("+")
                )
            events.append(ThermalThrottle(cores=cores))
        else:
            raise ValueError(
                f"unknown fault kind {kind!r} in {clause!r}; "
                f"one of core_offline, stall, throttle"
            )
    return FaultPlan(events=tuple(events), seed=seed)
