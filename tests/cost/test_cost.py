"""Cost model: compute cycles, aligned transfers, sync estimators."""

import pytest

from repro.cost import (
    OP_LAUNCH_CYCLES,
    align_up,
    aligned_region_bytes,
    aligned_weight_bytes,
    ceil_div,
    compute_cycles,
    fits_in_spm,
    layer_compute_cycles,
    redundant_compute_cost_cycles,
    store_load_roundtrip_cycles,
    sync_cost_cycles,
    transfer_cycles,
)
from repro.hw import tiny_test_machine
from repro.ir import (
    Conv2D,
    DataType,
    Graph,
    Input,
    Interval,
    Region,
    TensorShape,
    Window2D,
)


@pytest.fixture
def npu():
    return tiny_test_machine(2)


@pytest.fixture
def conv_layer():
    g = Graph("g")
    g.add("in", Input(TensorShape(16, 16, 4)))
    g.add(
        "c", Conv2D(out_channels=8, in_channels=4, window=Window2D.square(3)), ["in"]
    )
    return g.layer("c")


class TestComputeCycles:
    def test_scales_with_macs(self, npu):
        core = npu.core(0)
        a = compute_cycles(6400, core, include_launch=False)
        b = compute_cycles(12800, core, include_launch=False)
        assert b == pytest.approx(2 * a)

    def test_launch_overhead(self, npu):
        core = npu.core(0)
        with_l = compute_cycles(640, core)
        without = compute_cycles(640, core, include_launch=False)
        assert with_l == pytest.approx(without + OP_LAUNCH_CYCLES)

    def test_zero_macs_is_free(self, npu):
        assert compute_cycles(0, npu.core(0)) == 0.0

    def test_rejects_negative(self, npu):
        with pytest.raises(ValueError):
            compute_cycles(-1, npu.core(0))

    def test_layer_compute_cycles(self, npu, conv_layer):
        region = Region.full(conv_layer.output_shape)
        expected = compute_cycles(conv_layer.macs(), npu.core(0))
        assert layer_compute_cycles(conv_layer, region, npu.core(0)) == expected


class TestAlignment:
    def test_align_up(self):
        assert align_up(0, 16) == 0
        assert align_up(1, 16) == 16
        assert align_up(16, 16) == 16
        assert align_up(17, 16) == 32

    def test_align_up_rejects_bad(self):
        with pytest.raises(ValueError):
            align_up(4, 0)

    def test_ceil_div(self):
        assert ceil_div(7, 3) == 3
        with pytest.raises(ValueError):
            ceil_div(7, 0)

    def test_region_bytes_pads_channels(self, npu):
        core = npu.core(0)  # channel_alignment=4, spatial_alignment=1
        region = Region(Interval(0, 2), Interval(0, 2), Interval(0, 3))
        assert (
            aligned_region_bytes(region, DataType.INT8, core) == 2 * 2 * 4
        )

    def test_region_bytes_pads_rows(self):
        npu3 = tiny_test_machine(3)
        import dataclasses

        core = dataclasses.replace(npu3.core(0), spatial_alignment=4)
        region = Region(Interval(0, 3), Interval(0, 2), Interval(0, 4))
        assert aligned_region_bytes(region, DataType.INT8, core) == 4 * 2 * 4

    def test_empty_region_free(self, npu):
        region = Region(Interval(0, 0), Interval(0, 0), Interval(0, 0))
        assert aligned_region_bytes(region, DataType.INT8, npu.core(0)) == 0

    def test_dtype_scales(self, npu):
        core = npu.core(0)
        region = Region(Interval(0, 2), Interval(0, 2), Interval(0, 4))
        int8 = aligned_region_bytes(region, DataType.INT8, core)
        int16 = aligned_region_bytes(region, DataType.INT16, core)
        assert int16 == 2 * int8

    def test_weight_bytes(self, npu):
        core = npu.core(0)
        assert aligned_weight_bytes(0, DataType.INT8, core) == 0
        assert aligned_weight_bytes(5, DataType.INT8, core) == 8
        assert aligned_weight_bytes(5, DataType.INT16, core) == 16


class TestTransfer:
    def test_zero_bytes_free(self, npu):
        assert transfer_cycles(0, npu.core(0), npu) == 0.0

    def test_latency_plus_bandwidth(self, npu):
        core = npu.core(0)
        t = transfer_cycles(800, core, npu)
        rate = min(core.dma_bytes_per_cycle, npu.bus_bytes_per_cycle)
        assert t == pytest.approx(npu.dram_latency_cycles + 800 / rate)

    def test_capped_by_bus(self, npu):
        import dataclasses

        fat_core = dataclasses.replace(npu.core(0), dma_bytes_per_cycle=1e9)
        t = transfer_cycles(1200, fat_core, npu)
        assert t == pytest.approx(
            npu.dram_latency_cycles + 1200 / npu.bus_bytes_per_cycle
        )

    def test_rejects_negative(self, npu):
        with pytest.raises(ValueError):
            transfer_cycles(-1, npu.core(0), npu)

    def test_fits_in_spm(self, npu):
        assert fits_in_spm(npu.core(0).spm_bytes, npu.core(0))
        assert not fits_in_spm(npu.core(0).spm_bytes + 1, npu.core(0))


class TestSyncEstimators:
    def test_sync_cost_matches_config(self, npu):
        assert sync_cost_cycles(npu) == npu.sync_cost_cycles()

    def test_roundtrip_is_twice_transfer_of_worst_core(self, npu, conv_layer):
        shape = conv_layer.output_shape
        full = Region.full(shape)
        empty = Region(Interval(0, 0), Interval(0, 0), Interval(0, 0))
        cost = store_load_roundtrip_cycles(conv_layer, [full, empty], npu)
        expected = 2 * transfer_cycles(
            full.size_bytes(conv_layer.dtype), npu.core(0), npu
        )
        assert cost == pytest.approx(expected)

    def test_redundant_compute_worst_core(self, npu, conv_layer):
        cost = redundant_compute_cost_cycles(conv_layer, [1000, 4000], npu)
        assert cost == pytest.approx(
            compute_cycles(4000, npu.core(1), include_launch=False)
        )

    def test_no_redundancy_is_free(self, npu, conv_layer):
        assert redundant_compute_cost_cycles(conv_layer, [0, 0], npu) == 0.0
