"""Critical-path extraction from a simulated trace.

Walks backward from the last-finishing command, at each step following
the constraint that *bound* the command's start time: a dependency that
finished exactly then, or the same engine's previous command.  The
resulting chain is the critical path -- shortening anything off it cannot
improve the makespan.  Each segment is attributed to compute, DMA, halo,
or synchronization, giving a one-line answer to "what should I optimize
next?".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.compiler.program import CommandKind, Engine, Program
from repro.hw.config import NPUConfig
from repro.sim.trace import Trace, TraceEvent

_EPS = 1e-6


@dataclasses.dataclass(frozen=True)
class PathSegment:
    """One command on the critical path."""

    event: TraceEvent
    #: how this command's start was bound: 'dep', 'engine', or 'ready'
    bound_by: str

    @property
    def category(self) -> str:
        kind = self.event.kind
        if kind is CommandKind.COMPUTE:
            return "compute"
        if kind is CommandKind.BARRIER:
            return "sync"
        if kind in (CommandKind.HALO_SEND, CommandKind.HALO_RECV):
            return "halo"
        return "dma"


@dataclasses.dataclass
class CriticalPath:
    """The makespan-determining chain, last command first."""

    segments: List[PathSegment]
    makespan_cycles: float

    def breakdown(self) -> Dict[str, float]:
        """Cycles of the makespan attributed to each category.

        Each segment contributes the gap it covers on the path: from the
        previous segment's start (or its own ready time) to its own start
        plus its duration -- summing to the makespan.
        """
        totals: Dict[str, float] = {}
        for seg in self.segments:
            totals[seg.category] = totals.get(seg.category, 0.0) + seg.event.duration
        # time not covered by path segments (waits inside the chain).
        covered = sum(totals.values())
        if self.makespan_cycles > covered + _EPS:
            totals["wait"] = self.makespan_cycles - covered
        return totals

    def layers(self) -> List[str]:
        seen: List[str] = []
        for seg in self.segments:
            if seg.event.layer and (not seen or seen[-1] != seg.event.layer):
                seen.append(seg.event.layer)
        return seen


def critical_path(program: Program, trace: Trace) -> CriticalPath:
    """Extract the critical path of a simulated run."""
    if not trace.events:
        return CriticalPath(segments=[], makespan_cycles=0.0)
    events = {e.cid: e for e in trace.events}
    commands = {c.cid: c for c in program.commands}

    # engine predecessor in program order.
    engine_prev: Dict[int, Optional[int]] = {}
    last_on: Dict[Tuple[int, Engine], int] = {}
    for cmd in program.commands:
        key = (cmd.core, cmd.engine)
        engine_prev[cmd.cid] = last_on.get(key)
        last_on[key] = cmd.cid

    current = max(trace.events, key=lambda e: e.end).cid
    segments: List[PathSegment] = []
    guard = 0
    while current is not None and guard <= len(events):
        guard += 1
        e = events[current]
        cmd = commands[current]
        binding: Optional[int] = None
        bound_by = "ready"
        # a dependency that completed exactly at our start binds us.
        for dep in cmd.deps:
            if abs(events[dep].end - e.start) <= _EPS:
                binding = dep
                bound_by = "dep"
                break
        if binding is None:
            prev = engine_prev[current]
            if prev is not None and abs(events[prev].end - e.start) <= _EPS:
                binding = prev
                bound_by = "engine"
        if binding is None:
            # started when its own latency allowed: pick the latest-ending
            # dependency (if any) to keep walking toward t=0.
            dep_ends = [(events[d].end, d) for d in cmd.deps]
            if dep_ends and e.start > _EPS:
                binding = max(dep_ends)[1]
                bound_by = "dep"
        segments.append(PathSegment(event=e, bound_by=bound_by))
        current = binding

    return CriticalPath(segments=segments, makespan_cycles=trace.makespan)


def render_critical_path(
    program: Program, trace: Trace, npu: NPUConfig, max_rows: int = 14
) -> str:
    """Human-readable critical path summary."""
    from repro.analysis.tables import format_table

    path = critical_path(program, trace)
    breakdown = path.breakdown()
    total = sum(breakdown.values()) or 1.0
    header = "Critical path breakdown: " + ", ".join(
        f"{k} {npu.cycles_to_us(v):,.1f}us ({v / total:.0%})"
        for k, v in sorted(breakdown.items(), key=lambda kv: -kv[1])
    )
    rows = []
    for seg in path.segments[:max_rows]:
        e = seg.event
        rows.append(
            [
                f"{e.layer}{('.' + e.tag) if e.tag else ''}",
                e.kind.value,
                f"core{e.core}",
                f"{npu.cycles_to_us(e.start):,.1f}",
                f"{npu.cycles_to_us(e.duration):,.1f}us",
                seg.bound_by,
            ]
        )
    table = format_table(
        ["Command", "Kind", "Core", "Start (us)", "Duration", "Bound by"],
        rows,
        title=f"Last {min(max_rows, len(path.segments))} links of the critical path",
    )
    return header + "\n\n" + table
