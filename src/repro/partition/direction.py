"""Partitioning directions and the Table 1 method catalogue.

A layer can be split across cores along the spatial (height) axis or the
output-channel axis.  Table 1 of the paper also lists two starred variants
that partition the *other* operand and pay a partial-sum reduction; they
are catalogued here for completeness (and printed by the partitioning-tour
example) but never chosen by the compiler, exactly as in the paper.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Tuple


class PartitionDirection(enum.Enum):
    """How a layer's work is divided among cores."""

    #: Split input/output along the image height; kernels replicated.
    SPATIAL = "spatial"
    #: Split kernels/output along channels; input replicated (or split for
    #: channel-wise ops).
    CHANNEL = "channel"
    #: No split -- the whole layer runs on one core.
    NONE = "none"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class PartitioningMethod:
    """One row of Table 1: a way to partition a convolution layer."""

    name: str
    direction: PartitionDirection
    data_partitioned: Tuple[str, ...]
    data_replicated: Tuple[str, ...]
    needs_partial_sum_reduction: bool

    @property
    def preferred(self) -> bool:
        """The paper discards methods needing cross-core reductions."""
        return not self.needs_partial_sum_reduction


#: Table 1 of the paper, verbatim.
CONV_PARTITIONING_METHODS: Tuple[PartitioningMethod, ...] = (
    PartitioningMethod(
        name="spatial",
        direction=PartitionDirection.SPATIAL,
        data_partitioned=("input", "output"),
        data_replicated=("kernel",),
        needs_partial_sum_reduction=False,
    ),
    PartitioningMethod(
        name="spatial*",
        direction=PartitionDirection.SPATIAL,
        data_partitioned=("kernel",),
        data_replicated=("input", "output"),
        needs_partial_sum_reduction=True,
    ),
    PartitioningMethod(
        name="channel",
        direction=PartitionDirection.CHANNEL,
        data_partitioned=("kernel", "output"),
        data_replicated=("input",),
        needs_partial_sum_reduction=False,
    ),
    PartitioningMethod(
        name="channel*",
        direction=PartitionDirection.CHANNEL,
        data_partitioned=("input", "kernel"),
        data_replicated=(),
        needs_partial_sum_reduction=True,
    ),
)


def preferred_methods() -> Tuple[PartitioningMethod, ...]:
    return tuple(m for m in CONV_PARTITIONING_METHODS if m.preferred)


class PartitionPolicy(enum.Enum):
    """Compiler-level partitioning policy (Table 4's three schemes)."""

    #: Per-layer direction chosen by heuristics h1-h5 (the paper's Base).
    ADAPTIVE = "adaptive"
    #: Force spatial wherever the op supports it.
    SPATIAL_ONLY = "spatial"
    #: Force channel wherever the op supports it.
    CHANNEL_ONLY = "channel"
    #: Everything on core 0 (the 1-core baseline).
    SINGLE_CORE = "single-core"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
