"""Clean-path serving must keep reproducing the committed benchmark.

Re-runs ``benchmarks/bench_serving.py``'s exact parameters -- through an
*empty* fault plan, exercising the no-op routing -- and compares the
summary against the committed ``BENCH_serving.json``.  This is the
regression gate for the fault-injection layer: adding ``repro.faults``
must not move a single clean-path number.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from benchmarks.bench_serving import DURATION_US, MIX, RPS, SEED, RESULT_PATH
from repro.analysis.serving import serving_summary
from repro.faults import FaultPlan
from repro.hw import exynos2100_like
from repro.serve import serve_policies


@pytest.mark.skipif(
    not pathlib.Path(RESULT_PATH).exists(),
    reason="BENCH_serving.json not generated yet",
)
def test_empty_fault_plan_reproduces_committed_benchmark():
    committed = json.loads(pathlib.Path(RESULT_PATH).read_text())
    reports = serve_policies(
        MIX,
        exynos2100_like(),
        rps=RPS,
        duration_us=DURATION_US,
        seed=SEED,
        faults=FaultPlan(),
    )
    fresh = json.loads(json.dumps(serving_summary(reports)))
    assert fresh == committed
