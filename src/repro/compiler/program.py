"""The compiled program: per-core command streams with dependencies.

A :class:`Program` is the compiler's output and the simulator's input.
Each command runs on one *engine* of one core -- the load DMA, the
compute engine, the store DMA, or the control unit -- and engines process
their commands strictly in program order (they are hardware queues).
Cross-engine and cross-core ordering is expressed with explicit
dependency edges: a command starts only when it reaches the head of its
engine queue *and* all its dependencies have completed.

This dataflow form captures every execution model in the paper: the
load/compute/store software pipeline with double buffering, barriers
(commands on every core depending on all cores' frontiers), and
halo-exchange (a receive depending on remote sends).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Engine(enum.Enum):
    """Hardware queues within one core."""

    LOAD = "load"
    COMPUTE = "compute"
    STORE = "store"
    CTRL = "ctrl"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CommandKind(enum.Enum):
    LOAD_INPUT = "load-input"
    LOAD_WEIGHT = "load-weight"
    COMPUTE = "compute"
    STORE_OUTPUT = "store-output"
    HALO_SEND = "halo-send"
    HALO_RECV = "halo-recv"
    BARRIER = "barrier"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_ENGINE_OF_KIND = {
    CommandKind.LOAD_INPUT: Engine.LOAD,
    CommandKind.LOAD_WEIGHT: Engine.LOAD,
    CommandKind.HALO_RECV: Engine.LOAD,
    CommandKind.COMPUTE: Engine.COMPUTE,
    CommandKind.STORE_OUTPUT: Engine.STORE,
    CommandKind.HALO_SEND: Engine.STORE,
    CommandKind.BARRIER: Engine.CTRL,
}


@dataclasses.dataclass(frozen=True)
class Command:
    """One unit of work on one engine of one core.

    Exactly one of ``num_bytes`` (DMA commands), ``macs`` (compute) or
    ``cycles`` (fixed-latency control commands) is meaningful, selected by
    ``kind``.
    """

    cid: int
    core: int
    kind: CommandKind
    deps: Tuple[int, ...] = ()
    num_bytes: int = 0
    macs: int = 0
    cycles: float = 0.0
    layer: str = ""
    tag: str = ""

    @property
    def engine(self) -> Engine:
        return _ENGINE_OF_KIND[self.kind]

    @property
    def is_dma(self) -> bool:
        return self.engine in (Engine.LOAD, Engine.STORE)

    def __str__(self) -> str:
        payload = (
            f"{self.num_bytes}B"
            if self.is_dma
            else (f"{self.macs}MAC" if self.kind is CommandKind.COMPUTE else f"{self.cycles:.0f}cy")
        )
        return f"#{self.cid} c{self.core} {self.kind.value} {self.layer}{self.tag} {payload}"


@dataclasses.dataclass
class Program:
    """An executable command set for an ``num_cores``-core NPU."""

    num_cores: int
    commands: List[Command] = dataclasses.field(default_factory=list)

    def command(self, cid: int) -> Command:
        return self.commands[cid]

    def __len__(self) -> int:
        return len(self.commands)

    def per_engine_queues(self) -> Dict[Tuple[int, Engine], List[Command]]:
        """Commands grouped by (core, engine), preserving program order."""
        queues: Dict[Tuple[int, Engine], List[Command]] = {}
        for cmd in self.commands:
            queues.setdefault((cmd.core, cmd.engine), []).append(cmd)
        return queues

    def validate(self) -> None:
        """Well-formedness: dense ids, forward-only deps, sane payloads.

        Raises ``ValueError`` on the first violation.  The static
        verifier (:mod:`repro.verify`) reports the same family of
        conditions as RPR2xx diagnostics without raising, plus the
        deeper semantic checks.
        """
        n = len(self.commands)
        for i, cmd in enumerate(self.commands):
            if cmd.cid != i:
                raise ValueError(
                    f"command id {cmd.cid} at position {i} "
                    f"(ids must be dense and unique)"
                )
            if not 0 <= cmd.core < self.num_cores:
                raise ValueError(f"{cmd}: bad core index")
            if len(set(cmd.deps)) != len(cmd.deps):
                raise ValueError(f"{cmd}: duplicate dependency entries")
            for dep in cmd.deps:
                if dep == cmd.cid:
                    raise ValueError(f"{cmd}: depends on itself")
                if dep < 0:
                    raise ValueError(f"{cmd}: negative dependency")
                if dep >= n:
                    raise ValueError(f"{cmd}: dangling dependency {dep}")
                if dep > cmd.cid:
                    raise ValueError(f"{cmd}: dependency {dep} is not earlier")
            if cmd.cycles < 0:
                raise ValueError(f"{cmd}: negative cycles")
            if cmd.is_dma:
                if cmd.num_bytes < 0:
                    raise ValueError(f"{cmd}: negative bytes")
                if cmd.macs:
                    raise ValueError(f"{cmd}: DMA command carries MACs")
            elif cmd.kind is CommandKind.COMPUTE:
                if cmd.macs < 0:
                    raise ValueError(f"{cmd}: negative macs")
                if cmd.num_bytes:
                    raise ValueError(f"{cmd}: compute command carries bytes")
            elif cmd.kind is CommandKind.BARRIER:
                if cmd.num_bytes or cmd.macs:
                    raise ValueError(f"{cmd}: barrier carries a payload")

    def total_macs(self) -> int:
        return sum(c.macs for c in self.commands)

    def total_bytes(self, kinds: Optional[Iterable[CommandKind]] = None) -> int:
        wanted = set(kinds) if kinds is not None else None
        return sum(
            c.num_bytes
            for c in self.commands
            if c.is_dma and (wanted is None or c.kind in wanted)
        )

    def core_bytes(self, core: int) -> int:
        return sum(c.num_bytes for c in self.commands if c.core == core and c.is_dma)

    def count(self, kind: CommandKind) -> int:
        return sum(1 for c in self.commands if c.kind is kind)


class ProgramBuilder:
    """Incrementally constructs a Program, tracking engine tails."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self._commands: List[Command] = []
        #: last command id per (core, engine); -1 when none yet.
        self._tails: Dict[Tuple[int, Engine], int] = {}

    def _append(self, cmd: Command) -> int:
        self._commands.append(cmd)
        self._tails[(cmd.core, cmd.engine)] = cmd.cid
        return cmd.cid

    def _next_id(self) -> int:
        return len(self._commands)

    def tail(self, core: int, engine: Engine) -> Optional[int]:
        cid = self._tails.get((core, engine), -1)
        return None if cid < 0 else cid

    def frontier(self) -> List[int]:
        """Tails of every engine of every core (barrier dependencies)."""
        return sorted(cid for cid in self._tails.values())

    def add(
        self,
        core: int,
        kind: CommandKind,
        deps: Sequence[int] = (),
        num_bytes: int = 0,
        macs: int = 0,
        cycles: float = 0.0,
        layer: str = "",
        tag: str = "",
    ) -> int:
        cmd = Command(
            cid=self._next_id(),
            core=core,
            kind=kind,
            deps=tuple(sorted(set(int(d) for d in deps))),
            num_bytes=int(num_bytes),
            macs=int(macs),
            cycles=float(cycles),
            layer=layer,
            tag=tag,
        )
        return self._append(cmd)

    def barrier(self, cycles: float, layer: str = "", tag: str = "") -> List[int]:
        """Emit a global barrier: one CTRL command per core.

        Every barrier command depends on the current frontier of all
        cores, so each completes only after every core has arrived; the
        fixed ``cycles`` models the driver/firmware round trip.
        """
        frontier = self.frontier()
        cids = []
        for core in range(self.num_cores):
            cids.append(
                self.add(
                    core,
                    CommandKind.BARRIER,
                    deps=frontier,
                    cycles=cycles,
                    layer=layer,
                    tag=tag,
                )
            )
        return cids

    def build(self) -> Program:
        program = Program(num_cores=self.num_cores, commands=list(self._commands))
        program.validate()
        return program
