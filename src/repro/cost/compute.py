"""Compute-time estimation for layer slices on a core.

The compiler's heuristics (workload balancing, tiling, stratum cost
comparison *h8*) all need "how long would this slice take on this core".
The simulator integrates the same formula, mirroring the paper's
methodology of fitting cost estimators to profiled hardware: here the
"hardware" is the simulator, so estimator and machine agree by
construction.
"""

from __future__ import annotations

from repro.hw.config import CoreConfig
from repro.ir.graph import Layer
from repro.ir.tensor import Region

#: Fixed per-operation launch overhead (sequencer setup, descriptor fetch).
OP_LAUNCH_CYCLES = 150


def compute_cycles(macs: int, core: CoreConfig, include_launch: bool = True) -> float:
    """Cycles for ``macs`` multiply-accumulates on ``core``."""
    if macs < 0:
        raise ValueError("macs must be non-negative")
    cycles = macs / core.effective_macs_per_cycle
    if include_launch and macs > 0:
        cycles += OP_LAUNCH_CYCLES
    return cycles


def layer_compute_cycles(layer: Layer, out_region: Region, core: CoreConfig) -> float:
    """Cycles to compute ``out_region`` of ``layer`` on ``core``."""
    return compute_cycles(layer.macs(out_region), core)
