"""Schedule-strategy option: orders, invariants, functional exactness."""

import dataclasses

import pytest

from repro.compiler import CompileOptions, ScheduleStrategy, compile_model
from repro.hw import tiny_test_machine
from repro.ir.traversal import breadth_first_order, depth_first_order
from repro.runtime import run_compiled_functional

from tests.conftest import make_branchy_graph, make_mixed_graph


@pytest.fixture
def npu():
    return tiny_test_machine(3)


class TestStrategySelection:
    def test_depth_first_uses_dfs_order(self, npu):
        g = make_branchy_graph()
        opts = dataclasses.replace(
            CompileOptions.base(), schedule_strategy=ScheduleStrategy.DEPTH_FIRST
        )
        compiled = compile_model(g, npu, opts)
        assert compiled.schedule == depth_first_order(g)

    def test_breadth_first_uses_bfs_order(self, npu):
        g = make_branchy_graph()
        opts = dataclasses.replace(
            CompileOptions.base(), schedule_strategy=ScheduleStrategy.BREADTH_FIRST
        )
        compiled = compile_model(g, npu, opts)
        assert compiled.schedule == breadth_first_order(g)

    def test_default_is_algorithm1(self):
        assert (
            CompileOptions.base().schedule_strategy is ScheduleStrategy.ALGORITHM1
        )


class TestStrategyTradeoffs:
    def test_df_forwards_at_least_as_much_as_bf(self, npu):
        g = make_branchy_graph()
        results = {}
        for strategy in (ScheduleStrategy.DEPTH_FIRST, ScheduleStrategy.BREADTH_FIRST):
            opts = dataclasses.replace(
                CompileOptions.halo(), schedule_strategy=strategy
            )
            results[strategy] = compile_model(g, npu, opts).num_forwarded_edges()
        assert (
            results[ScheduleStrategy.DEPTH_FIRST]
            >= results[ScheduleStrategy.BREADTH_FIRST]
        )


class TestFunctionalExactness:
    @pytest.mark.parametrize("strategy", list(ScheduleStrategy), ids=str)
    def test_all_strategies_bit_exact(self, npu, strategy):
        g = make_mixed_graph()
        opts = dataclasses.replace(
            CompileOptions.stratum_config(), schedule_strategy=strategy
        )
        report = run_compiled_functional(compile_model(g, npu, opts))
        assert report.max_abs_error == 0.0
