"""Lowering invariants: what the emitted command streams must look like."""

import dataclasses

import pytest

from repro.compiler import CompileOptions, CommandKind, compile_model
from repro.hw import tiny_test_machine

from tests.conftest import make_branchy_graph, make_chain_graph, make_mixed_graph


def roomy(cores=3, sync=20000):
    npu = tiny_test_machine(cores)
    big = tuple(
        dataclasses.replace(c, spm_bytes=16 * 1024 * 1024) for c in npu.cores
    )
    return dataclasses.replace(npu, cores=big, sync_base_cycles=sync)


def commands_of(m, kind, layer=None):
    return [
        c
        for c in m.program.commands
        if c.kind is kind and (layer is None or c.layer == layer)
    ]


class TestProgramWellFormed:
    @pytest.mark.parametrize(
        "opts",
        [
            CompileOptions.single_core(),
            CompileOptions.base(),
            CompileOptions.halo(),
            CompileOptions.stratum_config(),
        ],
        ids=lambda o: o.label,
    )
    def test_validates(self, opts):
        g = make_mixed_graph()
        npu = tiny_test_machine(3)
        machine = npu.single_core() if opts.label == "1-core" else npu
        m = compile_model(g, machine, opts)
        m.program.validate()  # raises on malformed programs

    def test_macs_conserved_without_stratum(self):
        g = make_mixed_graph()
        npu = tiny_test_machine(3)
        for opts in (CompileOptions.base(), CompileOptions.halo()):
            m = compile_model(g, npu, opts)
            assert m.program.total_macs() == g.total_macs()

    def test_stratum_adds_redundant_macs_only(self):
        g = make_chain_graph()
        m = compile_model(g, roomy(), CompileOptions.stratum_config())
        assert m.program.total_macs() >= g.total_macs()
        assert m.redundant_macs == m.program.total_macs() - g.total_macs()


class TestBarrierPlacement:
    def test_single_core_has_no_barriers(self):
        g = make_mixed_graph()
        npu = tiny_test_machine(1)
        m = compile_model(g, npu, CompileOptions.single_core())
        assert m.program.count(CommandKind.BARRIER) == 0

    def test_base_has_barriers(self):
        g = make_mixed_graph()
        m = compile_model(g, tiny_test_machine(3), CompileOptions.base())
        assert m.num_barriers > 0

    def test_halo_reduces_barriers(self):
        g = make_chain_graph()
        base = compile_model(g, tiny_test_machine(3), CompileOptions.base())
        halo = compile_model(g, tiny_test_machine(3), CompileOptions.halo())
        assert halo.num_barriers < base.num_barriers

    def test_pure_chain_with_halo_has_no_barriers(self):
        g = make_chain_graph()
        m = compile_model(g, roomy(), CompileOptions.halo())
        # first conv loads the network input (no sync); the rest forward
        # or exchange halo -> no barrier anywhere.
        assert m.num_barriers == 0

    def test_barrier_count_is_per_core_consistent(self):
        g = make_branchy_graph()
        npu = tiny_test_machine(3)
        m = compile_model(g, npu, CompileOptions.base())
        barriers = commands_of(m, CommandKind.BARRIER)
        assert len(barriers) % npu.num_cores == 0
        for core in range(npu.num_cores):
            assert sum(1 for b in barriers if b.core == core) == len(barriers) // 3


class TestHaloCommands:
    def test_base_has_no_halo_commands(self):
        g = make_chain_graph()
        m = compile_model(g, tiny_test_machine(3), CompileOptions.base())
        assert m.program.count(CommandKind.HALO_SEND) == 0
        assert m.program.count(CommandKind.HALO_RECV) == 0

    def test_halo_send_recv_pair_up(self):
        g = make_chain_graph()
        m = compile_model(g, roomy(2, sync=200), CompileOptions.halo())
        sends = commands_of(m, CommandKind.HALO_SEND)
        recvs = commands_of(m, CommandKind.HALO_RECV)
        assert sends and recvs
        send_ids = {c.cid for c in sends}
        for recv in recvs:
            assert any(d in send_ids for d in recv.deps)

    def test_halo_bytes_match(self):
        g = make_chain_graph()
        m = compile_model(g, roomy(2, sync=200), CompileOptions.halo())
        sent = sum(c.num_bytes for c in commands_of(m, CommandKind.HALO_SEND))
        received = sum(c.num_bytes for c in commands_of(m, CommandKind.HALO_RECV))
        assert sent == received > 0

    def test_send_depends_on_computes_of_same_layer(self):
        g = make_chain_graph()
        m = compile_model(g, roomy(2, sync=200), CompileOptions.halo())
        for send in commands_of(m, CommandKind.HALO_SEND):
            dep_cmds = [m.program.command(d) for d in send.deps]
            assert all(c.kind is CommandKind.COMPUTE for c in dep_cmds)
            assert all(c.layer == send.layer for c in dep_cmds)
            assert all(c.core == send.core for c in dep_cmds)


class TestStratumLowering:
    def test_interior_layers_emit_no_stores_or_loads(self):
        g = make_chain_graph()
        m = compile_model(g, roomy(), CompileOptions.stratum_config())
        assert len(m.strata.strata) == 1
        for name in ("c1", "c2"):
            if m.strata.is_interior(name):
                assert not commands_of(m, CommandKind.STORE_OUTPUT, name)
        # interior consumers do not load inputs (weights excepted).
        for name in ("c2", "c3"):
            assert not commands_of(m, CommandKind.LOAD_INPUT, name)
            assert commands_of(m, CommandKind.LOAD_WEIGHT, name)

    def test_stratum_chain_has_no_internal_barrier(self):
        g = make_chain_graph()
        m = compile_model(g, roomy(), CompileOptions.stratum_config())
        assert m.num_barriers == 0

    def test_bottom_layer_stores(self):
        g = make_chain_graph()
        m = compile_model(g, roomy(), CompileOptions.stratum_config())
        assert commands_of(m, CommandKind.STORE_OUTPUT, "c3")


class TestDoubleBuffering:
    def test_later_loads_wait_for_earlier_computes(self):
        """Tile k's load depends on tile k-2's compute (buffer reuse)."""
        g = make_chain_graph(h=64, w=64)
        npu = tiny_test_machine(1)
        m = compile_model(g, npu, CompileOptions.single_core())
        by_layer = {}
        for c in m.program.commands:
            by_layer.setdefault((c.layer, c.kind), []).append(c)
        loads = by_layer.get(("c2", CommandKind.LOAD_INPUT), [])
        computes = by_layer.get(("c2", CommandKind.COMPUTE), [])
        if len(loads) < 3:
            pytest.skip("not enough tiles to observe double buffering")
        compute_ids = {c.cid for c in computes}
        assert any(
            any(d in compute_ids for d in load.deps) for load in loads[2:]
        )
