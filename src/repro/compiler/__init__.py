"""The NPU compiler: options, forwarding planning, lowering, driver."""

from repro.compiler.autotune import (
    AutotuneReport,
    Evaluator,
    Knob,
    SearchSpace,
    SearchStrategy,
    STRATEGIES,
    autotune,
    build_space,
)
from repro.compiler.allocator import (
    ForwardingPlan,
    InputDecision,
    InputMode,
    plan_forwarding,
)
from repro.compiler.cache import (
    ProgramCache,
    compile_cached,
    compile_key,
    default_cache,
    graph_fingerprint,
    machine_fingerprint,
    options_fingerprint,
)
from repro.compiler.compiler import CompiledModel, compile_model
from repro.compiler.feedback import (
    LayerImbalance,
    RebalanceReport,
    measure_layer_imbalances,
    profile_guided_rebalance,
)
from repro.compiler.lowering import exec_regions_for, lower
from repro.compiler.options import CompileOptions, ScheduleStrategy
from repro.compiler.serialize import (
    load_program,
    program_from_dict,
    program_to_dict,
    save_program,
)
from repro.compiler.program import (
    Command,
    CommandKind,
    Engine,
    Program,
    ProgramBuilder,
)

__all__ = [
    "AutotuneReport",
    "Evaluator",
    "Knob",
    "STRATEGIES",
    "SearchSpace",
    "SearchStrategy",
    "autotune",
    "build_space",
    "Command",
    "CommandKind",
    "CompileOptions",
    "CompiledModel",
    "LayerImbalance",
    "RebalanceReport",
    "Engine",
    "ForwardingPlan",
    "InputDecision",
    "InputMode",
    "Program",
    "ProgramBuilder",
    "ProgramCache",
    "ScheduleStrategy",
    "compile_cached",
    "compile_key",
    "compile_model",
    "default_cache",
    "graph_fingerprint",
    "machine_fingerprint",
    "options_fingerprint",
    "load_program",
    "program_from_dict",
    "program_to_dict",
    "save_program",
    "measure_layer_imbalances",
    "profile_guided_rebalance",
    "exec_regions_for",
    "lower",
    "plan_forwarding",
]
