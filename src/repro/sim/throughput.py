"""Back-to-back frame execution: throughput on top of the latency model.

A camera pipeline runs inference per frame; consecutive frames are
independent, so frame *k+1*'s loads can stream while frame *k*'s tail is
still computing -- the engines' in-order queues pipeline across frames
naturally once the programs are concatenated.  This module measures that
steady-state throughput and how much of the per-frame coordination cost
it amortizes.
"""

from __future__ import annotations

import dataclasses

from repro.compiler.program import Program
from repro.hw.config import NPUConfig
from repro.sim.simulator import SimResult, simulate


def repeat_program(program: Program, frames: int, label: str = "f") -> Program:
    """Concatenate ``frames`` copies of ``program`` on the same cores.

    Copies carry no cross-frame dependencies (independent inputs and
    output buffers in global memory); per-engine program order still
    serializes each engine's work, which is exactly the pipelining a
    double-buffered runtime achieves.
    """
    if frames <= 0:
        raise ValueError("frames must be positive")
    commands = []
    offset = 0
    for frame in range(frames):
        prefix = f"{label}{frame}/"
        for cmd in program.commands:
            commands.append(
                dataclasses.replace(
                    cmd,
                    cid=cmd.cid + offset,
                    deps=tuple(d + offset for d in cmd.deps),
                    layer=prefix + cmd.layer if cmd.layer else prefix.rstrip("/"),
                )
            )
        offset += len(program.commands)
    merged = Program(num_cores=program.num_cores, commands=commands)
    merged.validate()
    # Offsetting ids frame by frame must preserve deadlock freedom across
    # the whole concatenation; the structure pass checks the union of
    # dependency edges and engine queue order.
    from repro.verify import VerificationError, verify_program

    report = verify_program(merged, model=f"{frames}x{label}", config="repeated")
    if not report.ok:
        raise VerificationError(report)
    return merged


@dataclasses.dataclass
class ThroughputResult:
    """Steady-state throughput of back-to-back frames."""

    frames: int
    single_frame_latency_us: float
    makespan_us: float
    sim: SimResult

    @property
    def us_per_frame(self) -> float:
        return self.makespan_us / self.frames

    @property
    def frames_per_second(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return 1e6 * self.frames / self.makespan_us

    @property
    def pipelining_gain(self) -> float:
        """Serial latency over the pipelined per-frame cost (>= ~1.0)."""
        if self.us_per_frame <= 0:
            return 1.0
        return self.single_frame_latency_us / self.us_per_frame


def measure_throughput(
    program: Program,
    npu: NPUConfig,
    frames: int = 4,
    seed: int = 0,
) -> ThroughputResult:
    """Simulate ``frames`` consecutive inferences of ``program``."""
    single = simulate(program, npu, seed=seed).latency_us
    merged = repeat_program(program, frames)
    sim = simulate(merged, npu, seed=seed)
    return ThroughputResult(
        frames=frames,
        single_frame_latency_us=single,
        makespan_us=npu.cycles_to_us(sim.trace.makespan),
        sim=sim,
    )
