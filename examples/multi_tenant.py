#!/usr/bin/env python
"""Concurrent DNNs on one multicore NPU -- the paper's other motivation.

Section 1 motivates multicore NPUs not only by single-inference latency
but by "concurrent execution of multiple DNNs".  This example runs a
camera-style pipeline -- a classifier and a detector live at the same
time -- on the 3-core machine, assigning two cores to the latency-
critical detector and one to the classifier, and quantifies the bus
interference between them.  A second experiment oversubscribes the bus
deliberately to show where isolation breaks down.
"""

import dataclasses

from repro.analysis import format_table
from repro.compiler import CompileOptions
from repro.hw import exynos2100_like, homogeneous
from repro.models import get_model
from repro.sim import Tenant, run_concurrent


def report(title, result):
    rows = [
        [
            t.name,
            f"{t.isolated_latency_us:,.1f}us",
            f"{t.latency_us:,.1f}us",
            f"{t.interference:.3f}x",
            len(t.compiled.npu.cores),
        ]
        for t in result.tenants
    ]
    print()
    print(
        format_table(
            ["Tenant", "Alone", "Shared", "Interference", "Cores"],
            rows,
            title=title,
        )
    )
    print(f"makespan: {result.makespan_us:,.1f}us")


def main():
    npu = exynos2100_like()
    result = run_concurrent(
        npu,
        [
            Tenant(
                "detector",
                get_model("MobileNetV2-SSD"),
                cores=(0, 1),
                options=CompileOptions.stratum_config(),
            ),
            Tenant(
                "classifier",
                get_model("MobileNetV2"),
                cores=(2,),
                options=CompileOptions.single_core(),
            ),
        ],
    )
    report(
        "Camera pipeline on exynos2100-like (links undersubscribe the bus)",
        result,
    )

    # Oversubscribed variant: four fat-linked cores against a narrow bus.
    fat = homogeneous(
        4, dma_bytes_per_cycle=20.0, bus_bytes_per_cycle=40.0,
        macs_per_cycle=4096, spm_bytes=2 << 20,
    )
    result = run_concurrent(
        fat,
        [
            Tenant(
                "net-a",
                get_model("MobileNetV2"),
                cores=(0, 1),
                options=CompileOptions.stratum_config(),
            ),
            Tenant(
                "net-b",
                get_model("MobileNetV2"),
                cores=(2, 3),
                options=CompileOptions.stratum_config(),
            ),
        ],
    )
    report(
        "Two copies of MobileNetV2 on 4 cores, 80 B/cy of demand vs a "
        "40 B/cy bus",
        result,
    )


if __name__ == "__main__":
    main()
