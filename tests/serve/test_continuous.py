"""Continuous (backfill) serving: equivalence, work conservation, faults.

The equivalence suite is the correctness anchor for the shared-timeline
engine: continuous mode with admission restricted to wave barriers must
reproduce the gang scheduler's report *field for field* -- same
parameters, policies, and seed as the committed benchmark
(``tests/serve/test_bench_regression.py``).
"""

from __future__ import annotations

import pytest

from benchmarks.bench_serving import DURATION_US, MIX, RPS, SEED
from repro.faults import CoreOffline, FaultPlan
from repro.hw import exynos2100_like
from repro.serve import (
    LatencyPredictor,
    PolicyError,
    SchedulingPolicy,
    serve,
    serve_continuous,
    serve_degraded_continuous,
)
from repro.verify import check_structure

POLICIES = ("fifo", "sjf", "dynamic")
KW = dict(rps=RPS, duration_us=DURATION_US, seed=SEED)
OFFLINE = FaultPlan(events=(CoreOffline(core=0, at_us=4000.0),))


@pytest.fixture(scope="module")
def npu():
    return exynos2100_like()


@pytest.fixture(scope="module")
def predictor(npu):
    return LatencyPredictor(npu)


@pytest.fixture(scope="module")
def gang(npu, predictor):
    return {
        p: serve(MIX, npu, policy=p, predictor=predictor, **KW)
        for p in POLICIES
    }


@pytest.fixture(scope="module")
def continuous(npu, predictor):
    return {
        p: serve(MIX, npu, policy=p, predictor=predictor, mode="continuous", **KW)
        for p in POLICIES
    }


class TestBarrierEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_reproduces_gang_field_for_field(self, npu, predictor, gang, policy):
        barrier = serve_continuous(
            MIX, npu, policy=policy, predictor=predictor,
            wave_barrier=True, **KW
        )
        assert barrier.mode == "gang"
        assert barrier.continuous is None
        assert barrier.to_dict(include_requests=True) == gang[
            policy
        ].to_dict(include_requests=True)
        assert barrier.to_json() == gang[policy].to_json()


class TestStrictImprovement:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_makespan_and_queueing(self, gang, continuous, policy):
        g, c = gang[policy], continuous[policy]
        assert c.makespan_us < g.makespan_us
        assert c.mean_queue_us < g.mean_queue_us
        assert c.num_requests == g.num_requests


class TestWorkConservation:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_no_policy_stall(self, continuous, policy):
        stats = continuous[policy].continuous
        assert stats is not None
        assert stats.policy_stall_us == 0.0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_admission_trace_shows_no_idle_with_queued_work(
        self, continuous, policy
    ):
        """Independent check from the admission trace itself: whenever a
        core group had sat free for a while before an admission, no
        request can have been queued during that idle gap."""
        report = continuous[policy]
        waits = [
            (r.request.arrival_us, r.start_us)
            for r in report.results
            if r.start_us > r.request.arrival_us + 1e-6
        ]
        for a in report.continuous.admissions:
            if a.backfill_us <= 1e-6:
                continue
            gap_start, gap_end = a.t_us - a.backfill_us, a.t_us
            for arrival, start in waits:
                overlap = min(gap_end, start) - max(gap_start, arrival)
                assert overlap <= 1e-6, (
                    f"{policy}: cores {a.cores} idled in "
                    f"[{gap_start:.1f}, {gap_end:.1f}]us while a request "
                    f"queued from {arrival:.1f} to {start:.1f}us"
                )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_admission_records_are_consistent(self, continuous, policy):
        report = continuous[policy]
        stats = report.continuous
        assert stats.num_admissions == len(stats.admissions) == report.num_waves
        rids = [a.rid for a in stats.admissions]
        assert sorted(rids) == sorted(r.request.rid for r in report.results)
        for a in stats.admissions:
            assert a.cores and set(a.cores) <= set(a.free_cores)
            assert a.queue_len >= 1
            assert a.backfill_us >= 0.0


class TestDeterminism:
    def test_same_inputs_byte_identical(self, npu, predictor, continuous):
        again = serve(
            MIX, npu, policy="sjf", predictor=predictor, mode="continuous", **KW
        )
        assert again.to_json() == continuous["sjf"].to_json()
        assert again.to_dict(include_requests=True) == continuous[
            "sjf"
        ].to_dict(include_requests=True)
        assert again.continuous.admissions == continuous["sjf"].continuous.admissions


class TestVerifiedadmissions:
    def test_mid_session_programs_pass_the_verifier(
        self, npu, predictor, continuous
    ):
        """Every program admitted mid-session is a placed merge the
        static verifier accepts -- backfill changes *when* programs
        start, never what runs."""
        report = continuous["fifo"]
        patterns = {
            ((r.request.model, tuple(r.cores)),) for r in report.results
        }
        assert len(patterns) == report.verified_programs
        for pattern in patterns:
            merged = predictor.merged_for(pattern)
            assert check_structure(merged).ok


class _StallerPolicy(SchedulingPolicy):
    """A rogue policy that never schedules anything."""

    name = "staller"

    def plan(self, queue, npu, predictor, cores=None):
        return []


class TestEmptyPlanGuard:
    def test_gang_names_the_policy(self, npu, predictor):
        with pytest.raises(PolicyError, match="staller"):
            serve(
                MIX, npu, policy=_StallerPolicy(), predictor=predictor,
                max_requests=3, **KW
            )

    def test_continuous_names_the_policy(self, npu, predictor):
        with pytest.raises(PolicyError, match="staller"):
            serve(
                MIX, npu, policy=_StallerPolicy(), predictor=predictor,
                mode="continuous", max_requests=3, **KW
            )


class TestModeValidation:
    def test_unknown_mode_rejected(self, npu):
        with pytest.raises(ValueError, match="mode"):
            serve(MIX, npu, mode="wavefront", **KW)


class TestDegradedContinuous:
    @pytest.fixture(scope="class")
    def degraded(self, npu, predictor):
        return serve(
            MIX, npu, policy="dynamic", predictor=predictor,
            faults=OFFLINE, mode="continuous", **KW
        )

    def test_nothing_dropped_silently(self, degraded, continuous):
        generated = continuous["dynamic"].num_requests
        assert len(degraded.results) + len(degraded.shed) == generated

    def test_sections_present(self, degraded):
        assert degraded.mode == "continuous"
        assert degraded.degraded is not None
        assert degraded.degraded.dead_cores == (0,)
        assert degraded.continuous is not None

    def test_retries_avoid_dead_core(self, degraded):
        assert degraded.degraded.num_failed_waves >= 1
        for r in degraded.results:
            if r.attempts > 1:
                assert 0 not in r.cores

    def test_deterministic(self, npu, predictor, degraded):
        again = serve(
            MIX, npu, policy="dynamic", predictor=predictor,
            faults=OFFLINE, mode="continuous", **KW
        )
        assert again.to_json() == degraded.to_json()

    def test_empty_fault_plan_routes_to_clean_loop(
        self, npu, predictor, continuous
    ):
        empty = serve(
            MIX, npu, policy="fifo", predictor=predictor,
            faults=FaultPlan(), mode="continuous", **KW
        )
        assert empty.to_dict(include_requests=True) == continuous[
            "fifo"
        ].to_dict(include_requests=True)

    def test_all_cores_offline_sheds_everything(self, npu, predictor):
        plan = FaultPlan(
            events=tuple(CoreOffline(core=c, at_us=0.0) for c in range(3))
        )
        report = serve(
            MIX, npu, policy="fifo", predictor=predictor, faults=plan,
            mode="continuous", **KW
        )
        assert report.results == ()
        assert report.shed
        assert all(s.reason == "no-cores" for s in report.shed)

    def test_shed_slo_composes(self, npu, predictor, continuous):
        report = serve_degraded_continuous(
            MIX, npu, OFFLINE, policy="fifo", predictor=predictor,
            shed_slo=True, slo_scale=1.0, rps=RPS,
            duration_us=DURATION_US, seed=SEED,
        )
        assert all(
            s.reason in ("slo", "retries", "no-cores") for s in report.shed
        )
        clean = serve(
            MIX, npu, policy="fifo", predictor=predictor,
            slo_scale=1.0, **KW
        )
        assert len(report.results) + len(report.shed) == clean.num_requests

    def test_rejects_empty_plan(self, npu, predictor):
        with pytest.raises(ValueError):
            serve_degraded_continuous(
                MIX, npu, FaultPlan(), predictor=predictor, **KW
            )
