"""The event-driven scheduler is bit-identical to the reference scheduler.

:mod:`repro.sim.simulator` promises the exact same ``TraceEvent`` stream
as the retained queue-scanning reference in
:mod:`repro.sim.reference_scheduler` for equal seeds -- not just equal
makespans.  These tests pin that down across the full model zoo, the
four paper configurations, three seeds, and hypothesis-generated random
programs on a jitter-bearing machine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import CompileOptions, compile_cached
from repro.compiler.program import CommandKind, ProgramBuilder
from repro.hw import CoreConfig, NPUConfig, exynos2100_like
from repro.models import ZOO
from repro.sim import simulate, simulate_reference

SEEDS = (0, 1, 2)
CONFIGS = (
    CompileOptions.single_core(),
    CompileOptions.base(),
    CompileOptions.halo(),
    CompileOptions.stratum_config(),
)

_compiled: Dict[Tuple[str, str], Tuple[object, NPUConfig]] = {}


def _program_for(model_name: str, options: CompileOptions):
    """Compile one (model, configuration) once per test session."""
    key = (model_name, options.label)
    if key not in _compiled:
        npu = exynos2100_like()
        machine = npu.single_core() if options.is_single_core else npu
        info = next(m for m in ZOO if m.name == model_name)
        compiled = compile_cached(info.factory(), machine, options)
        _compiled[key] = (compiled.program, machine)
    return _compiled[key]


def assert_traces_identical(a, b) -> None:
    """Event-by-event equality, with a readable diff on mismatch."""
    assert a.makespan_cycles == b.makespan_cycles
    assert len(a.trace.events) == len(b.trace.events)
    for x, y in zip(a.trace.events, b.trace.events):
        assert x == y, f"trace diverges at cid={x.cid}: {x} != {y}"


@pytest.mark.parametrize("options", CONFIGS, ids=[o.label for o in CONFIGS])
@pytest.mark.parametrize("model", [m.name for m in ZOO])
def test_zoo_traces_bit_identical(model: str, options: CompileOptions):
    program, machine = _program_for(model, options)
    for seed in SEEDS:
        fast = simulate(program, machine, seed=seed)
        reference = simulate_reference(program, machine, seed=seed)
        assert_traces_identical(fast, reference)


def _jittery_machine(cores: int) -> NPUConfig:
    """Small machine with both jitter sources live, so seeds matter."""
    return NPUConfig(
        name="equiv",
        cores=tuple(
            CoreConfig(
                name=f"c{i}",
                macs_per_cycle=100,
                dma_bytes_per_cycle=10.0,
                spm_bytes=1 << 20,
                channel_alignment=1,
                spatial_alignment=1,
                compute_efficiency=1.0,
            )
            for i in range(cores)
        ),
        bus_bytes_per_cycle=15.0,
        frequency_ghz=1.0,
        dram_latency_cycles=3,
        sync_jitter_cycles=50,
        halo_jitter_cycles=25,
    )


DMA_KINDS = [CommandKind.LOAD_INPUT, CommandKind.STORE_OUTPUT, CommandKind.LOAD_WEIGHT]


@st.composite
def random_program(draw):
    cores = draw(st.integers(1, 3))
    n = draw(st.integers(1, 40))
    builder = ProgramBuilder(cores)
    for i in range(n):
        core = draw(st.integers(0, cores - 1))
        kind = draw(
            st.sampled_from(
                DMA_KINDS + [CommandKind.COMPUTE, CommandKind.HALO_SEND]
            )
        )
        deps = draw(
            st.lists(st.integers(0, max(0, i - 1)), max_size=3)
            if i > 0
            else st.just([])
        )
        if kind is CommandKind.COMPUTE:
            builder.add(core, kind, deps=deps, macs=draw(st.integers(0, 5000)))
        else:
            builder.add(core, kind, deps=deps, num_bytes=draw(st.integers(0, 4000)))
        if draw(st.booleans()) and i % 7 == 6:
            builder.barrier(cycles=draw(st.integers(0, 100)))
    return builder.build(), cores


@settings(max_examples=60, deadline=None)
@given(random_program(), st.integers(0, 3))
def test_random_programs_bit_identical(prog_cores, seed):
    program, cores = prog_cores
    npu = _jittery_machine(cores)
    fast = simulate(program, npu, seed=seed)
    reference = simulate_reference(program, npu, seed=seed)
    assert_traces_identical(fast, reference)


def test_different_seeds_differ_under_jitter():
    """Sanity: the jitter path is actually live on the equivalence machine.

    Build a program with a barrier (the jittered kind) and check two
    seeds do not collapse to the same makespan -- otherwise the
    seed-parametrized equivalence above would be vacuous.
    """
    builder = ProgramBuilder(2)
    for core in (0, 1):
        builder.add(core, CommandKind.COMPUTE, deps=[], macs=5000)
    barrier_cids = builder.barrier(cycles=10)
    for core in (0, 1):
        builder.add(core, CommandKind.COMPUTE, deps=list(barrier_cids), macs=5000)
    program = builder.build()
    npu = _jittery_machine(2)
    makespans = {simulate(program, npu, seed=s).makespan_cycles for s in range(8)}
    assert len(makespans) > 1


def test_plan_cache_reuse_is_safe():
    """Repeat simulations of one program reuse the cached plan and still
    match a fresh reference run each time."""
    npu = _jittery_machine(2)
    builder = ProgramBuilder(2)
    prev: List[int] = []
    for i in range(6):
        cid = builder.add(
            i % 2, CommandKind.LOAD_INPUT, deps=prev[-2:], num_bytes=1000 + i
        )
        prev.append(cid)
        cid = builder.add(i % 2, CommandKind.COMPUTE, deps=[prev[-1]], macs=3000)
        prev.append(cid)
    program = builder.build()
    for seed in (0, 1, 0, 2, 1):
        assert_traces_identical(
            simulate(program, npu, seed=seed),
            simulate_reference(program, npu, seed=seed),
        )
