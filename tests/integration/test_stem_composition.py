"""Compiler decisions on the InceptionV3 stem: the paper's worked example.

Pins down the structure the compiler should find on the Table 5 region
with the paper's machine: the two conv chains fuse into strata, pooling
goes channel-wise (h4), and the optimized stem runs with a small number
of barriers.
"""

import pytest

from repro.compiler import CompileOptions, compile_model
from repro.hw import exynos2100_like
from repro.models import inception_v3_stem
from repro.partition import PartitionDirection


@pytest.fixture(scope="module")
def npu():
    return exynos2100_like()


@pytest.fixture(scope="module")
def compiled(npu):
    return compile_model(inception_v3_stem(), npu, CompileOptions.stratum_config())


class TestDirections:
    def test_convs_spatial(self, compiled):
        for name in ("stem_conv0", "stem_conv1", "stem_conv2", "stem_conv4"):
            assert compiled.partition.direction(name) is PartitionDirection.SPATIAL

    def test_pools_channel_h4(self, compiled):
        for name in ("stem_pool0", "stem_pool1"):
            part = compiled.partition.partition(name)
            assert part.direction is PartitionDirection.CHANNEL
            assert part.reason == "h4"


class TestStrata:
    def test_two_conv_chains_fuse(self, compiled):
        names = [s.layer_names for s in compiled.strata.strata]
        assert ("stem_conv0", "stem_conv1", "stem_conv2") in names
        assert ("stem_conv3", "stem_conv4") in names

    def test_stratum_adds_modest_redundancy(self, compiled):
        # paper Table 5: a few percent of extra computation.
        assert 0 < compiled.redundant_macs < 0.05 * compiled.graph.total_macs()

    def test_pool_boundaries_still_sync(self, compiled):
        # channel-partitioned pools break the chains: some barriers remain.
        assert 1 <= compiled.num_barriers <= 4


class TestAgainstBase(object):
    def test_optimizations_reduce_coordination(self, npu, compiled):
        base = compile_model(inception_v3_stem(), npu, CompileOptions.base())
        assert compiled.num_barriers < base.num_barriers
        assert compiled.program.total_bytes() < base.program.total_bytes()
