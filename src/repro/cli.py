"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``models``    -- list the benchmark zoo (Table 2)
* ``describe``  -- graph statistics of one model
* ``compile``   -- compile and summarize the compiler's decisions
* ``run``       -- compile + simulate; latency, traffic, energy, exports
* ``sweep``     -- the four paper configurations side by side (Fig. 11 row)
* ``serve``     -- request-level serving simulation (queueing + SLOs)
* ``lint``      -- statically verify compiled command streams
* ``bounds``    -- analytic latency brackets vs simulated makespans
* ``table4`` / ``table5`` -- regenerate those paper tables
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    build_grid,
    format_table,
    record_speedups,
    render_layer_report,
    region_summary,
    render_gantt,
    run_configuration,
    run_sweep,
    table4_profiles,
)
from repro.analysis.export import write_chrome_trace
from repro.compiler import (
    STRATEGIES,
    CompileOptions,
    compile_model,
    profile_guided_rebalance,
)
from repro.hw import resolve_machine
from repro.models import ZOO, get_model, inception_v3_stem, model_names
from repro.partition import PartitionPolicy
from repro.sim import collect_stats, estimate_energy, simulate
from repro.verify import ALL_PASS_NAMES, PASS_NAMES

CONFIGS = {
    "1core": CompileOptions.single_core,
    "base": CompileOptions.base,
    "halo": CompileOptions.halo,
    "stratum": CompileOptions.stratum_config,
    "stratum-only": CompileOptions.stratum_only,
}


def _machine(spec: str):
    # Every subcommand funnels --machine through the one resolver in
    # repro.hw, so preset names, homN/tinyN families, and JSON files
    # behave identically everywhere (and unknown names list the presets).
    try:
        return resolve_machine(spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _graph(name: str):
    if name == "stem":
        return inception_v3_stem()
    try:
        return get_model(name)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None


def cmd_models(args: argparse.Namespace) -> int:
    rows = []
    for info in ZOO:
        graph = info.factory()
        rows.append(
            [
                info.name,
                info.category,
                "x".join(str(d) for d in info.input_size),
                info.dtype.value,
                len(graph),
                f"{graph.total_macs() / 1e9:.2f}G",
                f"{graph.total_weight_bytes() / 1e6:.1f}MB",
            ]
        )
    print(
        format_table(
            ["Model", "Category", "Input", "Type", "Layers", "MACs", "Weights"],
            rows,
            title="Benchmark zoo (paper Table 2)",
        )
    )
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    if args.model is None and args.machine is None:
        raise SystemExit("describe needs a MODEL, --machine, or both")
    if args.machine is not None:
        npu = _machine(args.machine)
        print(f"{npu.name}: {npu.num_cores} cores @ {npu.frequency_ghz:.2f} GHz")
        print(f"  bus:   {npu.bus_bytes_per_cycle:.1f} B/cycle shared")
        for i in range(npu.num_cores):
            core = npu.core(i)
            print(
                f"  core {i} ({core.name}): {core.macs_per_cycle} MAC/cycle, "
                f"{core.spm_bytes // 1024} KB SPM, "
                f"{core.dma_bytes_per_cycle:.1f} B/cycle DMA, "
                f"DVFS steps {list(core.dvfs_steps)}"
            )
        if args.model is None:
            return 0
        print()
    graph = _graph(args.model)
    print(f"{graph}")
    print(f"  MACs:        {graph.total_macs():,}")
    print(f"  weights:     {graph.total_weight_bytes():,} bytes")
    print(f"  activations: {graph.total_activation_bytes():,} bytes")
    print(f"  inputs:      {[str(l) for l in graph.inputs()]}")
    print(f"  outputs:     {[str(l) for l in graph.outputs()]}")
    if args.layers:
        for layer in graph.layers():
            print(f"  {layer.name:28s} {layer.op.type_name:18s} {layer.output_shape}")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    graph = _graph(args.model)
    npu = _machine(args.machine)
    options = CONFIGS[args.config]()
    if options.is_single_core:
        npu = npu.single_core()
    compiled = compile_model(graph, npu, options)
    print(compiled.describe())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    graph = _graph(args.model)
    npu = _machine(args.machine)
    options = CONFIGS[args.config]()
    if options.is_single_core:
        npu = npu.single_core()
    if args.rebalance:
        compiled, result, report = profile_guided_rebalance(
            graph, npu, options, seed=args.seed
        )
        print(
            f"rebalanced {report.adjusted_layers} layers in "
            f"{report.iterations_run} iterations: "
            f"{report.initial_latency_us:,.1f} -> "
            f"{report.final_latency_us:,.1f} us"
        )
    else:
        compiled = compile_model(graph, npu, options)
        result = simulate(compiled.program, npu, seed=args.seed)
    stats = collect_stats(result.trace, npu)
    print(f"latency:   {stats.latency_us:,.1f} us ({stats.makespan_cycles:,.0f} cycles)")
    print(f"traffic:   {stats.total_transfer_bytes / 1e6:,.2f} MB")
    print(f"barriers:  {stats.num_barriers}, halo exchanges: {stats.num_halo_exchanges}")
    print(
        f"sync:      mu {stats.sync_overhead_mean_us:.1f} us, "
        f"sd {stats.sync_overhead_std_us:.1f} us"
    )
    if args.energy:
        e = estimate_energy(result.trace, npu)
        parts = ", ".join(f"{k} {v:.1f}" for k, v in e.breakdown().items())
        print(f"energy:    {e.total_uj:,.1f} uJ ({parts}); avg {e.average_power_mw:,.0f} mW")
    if args.gantt:
        print(render_gantt(result.trace, npu.num_cores, width=args.gantt))
    if args.top_layers:
        print(render_layer_report(result.trace, npu, n=args.top_layers))
    if args.critical_path:
        from repro.analysis import render_critical_path

        print(render_critical_path(compiled.program, result.trace, npu))
    if args.chrome_trace:
        path = write_chrome_trace(result.trace, npu, args.chrome_trace)
        print(f"chrome trace written to {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    npu = _machine(args.machine)
    _graph(args.model)  # validate the name before fanning out
    if args.seeds < 1:
        raise SystemExit("--seeds must be at least 1")
    seeds = list(range(args.seed, args.seed + args.seeds))
    jobs = build_grid([args.model], seeds=seeds)
    records = run_sweep(jobs, npu, max_workers=args.jobs)
    s = record_speedups(records)[args.model]

    by_label: dict = {}
    for r in records:
        by_label.setdefault(r.label, []).append(r)
    rows = []
    for label, rs in by_label.items():
        mean_latency = sum(r.latency_us for r in rs) / len(rs)
        rows.append(
            [
                label,
                f"{mean_latency:,.1f}us",
                f"{s[label]:.2f}x",
                rs[0].num_barriers,
                rs[0].num_halo_exchanges,
                rs[0].num_strata,
            ]
        )
    title = f"{args.model} on {npu.name}"
    if len(seeds) > 1:
        title += f" (mean of {len(seeds)} seeds)"
    print(
        format_table(
            ["Config", "Latency", "Speedup", "Barriers", "Halo", "Strata"],
            rows,
            title=title,
        )
    )
    return 0


def cmd_table4(args: argparse.Namespace) -> int:
    npu = _machine(args.machine)
    profiles = table4_profiles(_graph(args.model), npu)
    rows = [
        [
            p.policy.value,
            f"{p.total_transfer_kb:,.0f}KB",
            f"{p.idle_mean_us:,.0f}us",
            f"{p.idle_std_us:,.0f}us",
            f"{p.latency_us:,.0f}us",
        ]
        for p in (
            profiles[PartitionPolicy.SPATIAL_ONLY],
            profiles[PartitionPolicy.CHANNEL_ONLY],
            profiles[PartitionPolicy.ADAPTIVE],
        )
    ]
    print(
        format_table(
            ["Scheme", "Total transfer", "Idle mu", "Idle sd", "Latency"],
            rows,
            title=f"Table 4 profile: {args.model}",
        )
    )
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis import audit_spm, peak_spm_per_core

    graph = _graph(args.model)
    npu = _machine(args.machine)
    options = CONFIGS[args.config]()
    if options.is_single_core:
        npu = npu.single_core()
    compiled = compile_model(graph, npu, options)
    usages, violations = audit_spm(compiled, tolerance=args.tolerance)
    peaks = peak_spm_per_core(compiled)
    rows = [
        [
            f"core {core}",
            f"{peak / 1024:,.0f}KB",
            f"{npu.core(core).spm_bytes / 1024:,.0f}KB",
            f"{peak / npu.core(core).spm_bytes:.0%}",
        ]
        for core, peak in sorted(peaks.items())
    ]
    print(
        format_table(
            ["Core", "Peak working set", "SPM", "Utilization"],
            rows,
            title=f"SPM audit: {args.model} under {options.label} "
            f"({len(usages)} sub-layers)",
        )
    )
    if violations:
        print(f"\n{len(violations)} violation(s):")
        for v in violations[:10]:
            print(f"  {v}")
        return 1
    print("\nno violations")
    return 0


#: --fail-on level -> severities that flip the lint exit code to 1.
_FAIL_LEVELS = {
    "error": ("error",),
    "warning": ("error", "warning"),
    "info": ("error", "warning", "info"),
}


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.verify import check_trace, verify_model

    npu = _machine(args.machine)
    models = model_names() if args.model == "all" else [args.model]
    config_names = sorted(CONFIGS) if args.config == "all" else [args.config]

    reports = []
    for model_name in models:
        graph = _graph(model_name)
        for config_name in config_names:
            options = CONFIGS[config_name]()
            machine = npu.single_core() if options.is_single_core else npu
            compiled = compile_model(graph, machine, options)
            # With --trace, simulate first so the bounds pass (when
            # selected) can cross-check the measured makespan against
            # its static bracket (RPR702 / RPR710).
            result = None
            if args.trace:
                result = simulate(compiled.program, machine, seed=args.seed)
            report = verify_model(
                compiled,
                passes=args.passes or None,
                spm_tolerance=args.tolerance,
                sim_result=result,
            )
            if result is not None:
                report.passes.append(
                    check_trace(compiled.program, result.trace)
                )
            reports.append(report)

    failing = _FAIL_LEVELS[args.fail_on]
    fail_count = sum(
        1
        for r in reports
        if any(d.severity.value in failing for d in r.diagnostics)
    )
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.render_text(verbose=args.verbose))
        total_errors = sum(len(r.errors) for r in reports)
        total_warnings = sum(
            1
            for r in reports
            for d in r.diagnostics
            if d.severity.value == "warning"
        )
        if fail_count:
            print(
                f"\n{fail_count}/{len(reports)} program(s) failed lint at "
                f"--fail-on={args.fail_on} "
                f"({total_errors} error(s), {total_warnings} warning(s))"
            )
        else:
            print(
                f"\nall {len(reports)} program(s) clean at "
                f"--fail-on={args.fail_on}"
            )
    return 1 if fail_count else 0


def cmd_bounds(args: argparse.Namespace) -> int:
    import json

    from repro.verify.bounds import bounds_for

    npu = _machine(args.machine)
    models = model_names() if args.model == "all" else [args.model]
    config_names = (
        ["1core", "base", "halo", "stratum"]
        if args.config == "all"
        else [args.config]
    )

    rows = []
    records = []
    violations = 0
    for model_name in models:
        graph = _graph(model_name)
        for config_name in config_names:
            options = CONFIGS[config_name]()
            machine = npu.single_core() if options.is_single_core else npu
            compiled = compile_model(graph, machine, options)
            report = bounds_for(compiled.program, machine)
            record = {
                "model": model_name,
                "config": config_name,
                **report.to_dict(),
            }
            sim_cell = "-"
            tight_cell = "-"
            status = "static"
            if not args.static:
                result = simulate(compiled.program, machine, seed=args.seed)
                makespan_us = machine.cycles_to_us(result.makespan_cycles)
                record["simulated_us"] = makespan_us
                record["tightness"] = report.tightness(result.makespan_cycles)
                record["in_bracket"] = report.contains(result.makespan_cycles)
                sim_cell = f"{makespan_us:.1f}"
                tight_cell = f"{record['tightness']:.3f}"
                if record["in_bracket"]:
                    status = "ok"
                else:
                    status = "VIOLATION"
                    violations += 1
            records.append(record)
            rows.append(
                [
                    model_name,
                    config_name,
                    f"{report.lower_bound_us:.1f}",
                    sim_cell,
                    f"{report.upper_bound_us:.1f}",
                    tight_cell,
                    report.binding,
                    status,
                ]
            )

    if args.json:
        print(json.dumps(records, indent=2))
    else:
        print(
            format_table(
                ["Model", "Config", "LB (us)", "Sim (us)", "UB (us)",
                 "sim/lb", "Binding", "Status"],
                rows,
                title=f"Static latency brackets on {npu.name} "
                f"(seed {args.seed})",
            )
        )
        if not args.static:
            tights = [r["tightness"] for r in records if "tightness" in r]
            if tights:
                print(
                    f"\nmean tightness sim/lb: "
                    f"{sum(tights) / len(tights):.3f} over {len(tights)} runs"
                )
            if violations:
                print(f"{violations} bracket violation(s)")
    return 1 if violations else 0


def cmd_autotune(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import render_autotune, render_autotune_comparison
    from repro.analysis.autotune import autotune_summary
    from repro.compiler import autotune

    npu = _machine(args.machine)
    options = CONFIGS[args.config]()
    if options.is_single_core:
        raise SystemExit("autotune needs a multi-core configuration")
    models = model_names() if args.model == "all" else [args.model]
    reports = []
    for model in models:
        graph = _graph(model)
        reports.append(
            autotune(
                graph,
                npu,
                options,
                strategy=args.strategy,
                budget=args.budget,
                seed=args.seed,
            )
        )
    if args.json:
        print(json.dumps(autotune_summary(reports), indent=2, sort_keys=True))
        return 0
    if len(reports) == 1:
        print(render_autotune(reports[0]))
    else:
        print(render_autotune_comparison(reports))
    if args.baseline:
        for model, report in zip(models, reports):
            graph = _graph(model)
            base = compile_model(graph, npu, report.base_options)
            best = compile_model(graph, npu, report.best_options)
            print(f"\nwinner vs h1-h8 baseline for {report.model!r}:")
            changed = [
                name
                for name in (l.name for l in graph.layers() if not l.is_input)
                if base.partition.direction(name) is not
                best.partition.direction(name)
            ]
            for name in changed:
                print(
                    f"  {name}: {base.partition.direction(name).value} "
                    f"-> {best.partition.direction(name).value}"
                )
            if not changed:
                print("  partition directions: unchanged")
            print(
                f"  barriers: {base.num_barriers} -> {best.num_barriers}, "
                f"halo exchanges: {base.num_halo_exchanges} -> "
                f"{best.num_halo_exchanges}, "
                f"strata: {len(base.strata.strata)} -> "
                f"{len(best.strata.strata)}, "
                f"redundant MACs: {base.redundant_macs:,} -> "
                f"{best.redundant_macs:,}"
            )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serve import POLICY_NAMES, serve_policies

    npu = _machine(args.machine)
    models = args.models or ["MobileNetV2", "InceptionV3"]
    for name in models:
        _graph(name)  # validate names before generating the workload
    duration_ms = 2.0 if args.duration_short else args.duration
    duration_us = duration_ms * 1000.0
    faults = None
    if args.faults:
        from repro.faults import parse_fault_spec

        try:
            faults = parse_fault_spec(
                args.faults, duration_us, npu.num_cores, seed=args.seed
            )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    policies = list(POLICY_NAMES) if args.policy == "all" else [args.policy]
    modes = ["gang", "continuous"] if args.mode == "both" else [args.mode]
    options = CONFIGS[args.config]()
    # One shared predictor across modes: compiles and isolated
    # simulations are paid once, the runs differ only in scheduling.
    from repro.serve import LatencyPredictor

    predictor = LatencyPredictor(npu, options, seed=args.seed)
    reports = []
    for mode in modes:
        reports.extend(
            serve_policies(
                models,
                npu,
                policies=policies,
                rps=args.rps,
                duration_us=duration_us,
                seed=args.seed,
                options=options,
                slo_scale=args.slo_scale,
                max_requests=args.requests,
                faults=faults,
                retry_limit=args.retry_limit,
                backoff_us=args.backoff_us,
                shed_slo=args.shed,
                predictor=predictor,
                mode=mode,
            )
        )

    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
        return 0
    from repro.analysis import render_serving_table

    print(render_serving_table(reports))
    if any(r.degraded is not None for r in reports):
        from repro.analysis import render_degradation_table

        print()
        print(render_degradation_table(reports))
    print(
        f"\n{sum(r.verified_programs for r in reports)} merged program(s) "
        f"built, all verifier-clean"
    )
    return 0


def _parse_kills(specs: List[str], duration_us: float) -> dict:
    """``DEV@US`` or ``DEV@PCT%`` kill specs to a device->time map."""
    kills = {}
    for spec in specs:
        try:
            dev_s, at_s = spec.split("@", 1)
            dev = int(dev_s)
            if at_s.endswith("%"):
                at = float(at_s[:-1]) / 100.0 * duration_us
            else:
                at = float(at_s)
        except ValueError:
            raise SystemExit(
                f"bad --kill spec {spec!r}: expected DEV@US or DEV@PCT%"
            ) from None
        kills[dev] = at
    return kills


def cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ROUTER_NAMES, serve_fleet

    models = args.models or ["MobileNetV2", "InceptionV3"]
    for name in models:
        _graph(name)
    duration_ms = 2.0 if args.duration_short else args.duration
    duration_us = duration_ms * 1000.0
    if args.machines:
        machines = [m.strip() for m in args.machines.split(",") if m.strip()]
        for m in machines:
            _machine(m)  # validate specs before the run
    else:
        _machine(args.machine)
        machines = args.devices
    kills = _parse_kills(args.kill, duration_us)
    routers = list(ROUTER_NAMES) if args.router == "all" else [args.router]
    options = CONFIGS[args.config]()
    reports = []
    for router in routers:
        try:
            reports.append(
                serve_fleet(
                    models,
                    machines=machines,
                    machine=args.machine,
                    router=router,
                    policy=args.policy,
                    mode=args.mode,
                    rps=args.rps,
                    duration_us=duration_us,
                    seed=args.seed,
                    options=options,
                    slo_scale=args.slo_scale,
                    max_requests=args.requests,
                    arrival=args.arrival,
                    kills=kills,
                    jobs=args.jobs,
                )
            )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None

    if args.json:
        print(
            json.dumps(
                [r.to_dict(include_trace=args.trace) for r in reports], indent=2
            )
        )
        return 0
    from repro.analysis import render_fleet_table, render_router_comparison

    for report in reports:
        print(render_fleet_table(report))
        if not report.conserved:
            print(
                f"WARNING: ledger broken: {report.num_served} served + "
                f"{report.num_shed} shed != {report.num_generated} generated"
            )
        print()
    if len(reports) > 1:
        print(render_router_comparison(reports))
    return 0


def cmd_table5(args: argparse.Namespace) -> int:
    npu = _machine(args.machine)
    stem = inception_v3_stem()
    rows = []
    for label, opts in (
        ("+Halo", CompileOptions.halo()),
        ("+Stratum", CompileOptions.stratum_only()),
        ("Combined", CompileOptions.stratum_config()),
    ):
        s = region_summary(run_configuration(stem, npu, opts, seed=args.seed))
        rows.append(
            [
                label,
                f"{s.latency_us:,.1f}us",
                f"{s.compute_gmacs:.3f}G",
                f"mu:{s.sync_mean_us:.1f} sd:{s.sync_std_us:.1f} us",
            ]
        )
    print(
        format_table(
            ["Configuration", "Latency", "Computation", "Sync overhead"],
            rows,
            title="Table 5: InceptionV3 stem",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multicore mobile NPU compiler & simulator (CGO 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the benchmark zoo").set_defaults(
        func=cmd_models
    )

    p = sub.add_parser(
        "describe", help="graph statistics of a model and/or a machine"
    )
    p.add_argument(
        "model", nargs="?", default=None,
        help=f"one of {model_names()} or 'stem'",
    )
    p.add_argument(
        "--machine", default=None, metavar="SPEC",
        help="also (or only) describe this machine preset / JSON file",
    )
    p.add_argument("--layers", action="store_true", help="print every layer")
    p.set_defaults(func=cmd_describe)

    def common(p: argparse.ArgumentParser, config: bool = True) -> None:
        p.add_argument("model", help=f"one of {model_names()} or 'stem'")
        p.add_argument("--machine", default="exynos2100")
        p.add_argument("--seed", type=int, default=0)
        if config:
            p.add_argument(
                "--config", choices=sorted(CONFIGS), default="stratum"
            )

    p = sub.add_parser("compile", help="compile and print compiler decisions")
    common(p)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile + simulate one configuration")
    common(p)
    p.add_argument("--energy", action="store_true", help="print energy estimate")
    p.add_argument(
        "--gantt", type=int, nargs="?", const=100, default=0,
        metavar="WIDTH", help="print an ASCII Gantt chart",
    )
    p.add_argument("--chrome-trace", metavar="PATH", help="export chrome://tracing JSON")
    p.add_argument(
        "--top-layers", type=int, nargs="?", const=10, default=0,
        metavar="N", help="print the N hottest layers",
    )
    p.add_argument(
        "--critical-path", action="store_true",
        help="print the makespan-determining command chain",
    )
    p.add_argument(
        "--rebalance", action="store_true",
        help="apply profile-guided rebalancing before reporting",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep", help="all four paper configurations")
    common(p, config=False)
    p.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="simulate N consecutive seeds starting at --seed and average",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep grid (default: serial)",
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("audit", help="verify compiled SPM working sets")
    common(p)
    p.add_argument("--tolerance", type=float, default=1.0)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "lint", help="statically verify compiled command streams"
    )
    p.add_argument(
        "model",
        help=f"one of {model_names()}, 'stem', or 'all' for the whole zoo",
    )
    p.add_argument("--machine", default="exynos2100")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--config", choices=sorted(CONFIGS) + ["all"], default="all",
        help="one configuration, or 'all' (default)",
    )
    p.add_argument(
        "--passes", nargs="+", choices=list(ALL_PASS_NAMES), metavar="PASS",
        help=f"run only these passes (of {', '.join(ALL_PASS_NAMES)}; "
        "default: the correctness six -- bounds and perflint are opt-in)",
    )
    p.add_argument(
        "--trace", action="store_true",
        help="also simulate and cross-check the trace (RPR6xx) and, with "
        "the bounds pass, the measured makespan against its bracket",
    )
    p.add_argument(
        "--fail-on", choices=["error", "warning", "info"], default="error",
        help="lowest severity that makes the exit code nonzero "
        "(default: error)",
    )
    p.add_argument("--tolerance", type=float, default=1.0,
                   help="SPM capacity tolerance factor")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument("--verbose", action="store_true",
                   help="print per-pass statistics")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "bounds", help="analytic latency brackets vs simulated makespans"
    )
    p.add_argument(
        "model",
        help=f"one of {model_names()}, 'stem', or 'all' for the whole zoo",
    )
    p.add_argument("--machine", default="exynos2100")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--config", choices=sorted(CONFIGS) + ["all"], default="all",
        help="one configuration, or 'all' for the four paper configs "
        "(default)",
    )
    p.add_argument(
        "--static", action="store_true",
        help="derive brackets only; skip the simulation cross-check",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser(
        "autotune",
        help="search per-layer knobs for a schedule beating h1-h8",
    )
    p.add_argument(
        "model",
        help=f"one of {model_names()}, 'stem', or 'all' for the whole zoo",
    )
    p.add_argument("--machine", default="exynos2100")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--config", choices=sorted(set(CONFIGS) - {"1core"}), default="stratum",
        help="base configuration the search space is built around",
    )
    p.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="beam+anneal",
    )
    p.add_argument(
        "--budget", type=int, default=64,
        help="max distinct candidate evaluations (default 64)",
    )
    p.add_argument(
        "--baseline", action="store_true",
        help="also diff the winning compile against the h1-h8 compile",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_autotune)

    p = sub.add_parser(
        "serve", help="request-level serving simulation (queueing + SLOs)"
    )
    p.add_argument(
        "models", nargs="*", metavar="MODEL",
        help=f"workload mix, one or more of {model_names()} or 'stem' "
        "(default: MobileNetV2 InceptionV3)",
    )
    p.add_argument("--machine", default="exynos2100")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--config", choices=sorted(CONFIGS), default="stratum",
        help="compile configuration for multi-core groups",
    )
    p.add_argument(
        "--policy", choices=["fifo", "sjf", "dynamic", "all"], default="all",
        help="scheduling policy, or 'all' to compare (default)",
    )
    p.add_argument(
        "--mode", choices=["gang", "continuous", "both"], default="gang",
        help="admission discipline: 'gang' starts requests in waves and "
        "waits for each wave to drain (default); 'continuous' backfills "
        "cores the moment they free up (work-conserving, lower queueing "
        "delay under backlog); 'both' runs and compares the two",
    )
    p.add_argument(
        "--rps", type=float, default=800.0,
        help="offered load, requests per second of simulated time",
    )
    p.add_argument(
        "--duration", type=float, default=20.0, metavar="MS",
        help="arrival window in simulated milliseconds",
    )
    p.add_argument(
        "--duration-short", action="store_true",
        help="2 ms smoke-test window (overrides --duration)",
    )
    p.add_argument(
        "--requests", type=int, default=0, metavar="N",
        help="additionally cap the workload at N requests",
    )
    p.add_argument(
        "--slo-scale", type=float, default=5.0,
        help="per-request SLO as a multiple of the model's isolated "
        "latency (0 disables SLOs)",
    )
    p.add_argument(
        "--faults", metavar="SPEC", default="",
        help="inject faults, e.g. 'core_offline@50%%', "
        "'stall:bus@10%%+500us', 'throttle' (comma-separate to combine)",
    )
    p.add_argument(
        "--retry-limit", type=int, default=3, metavar="N",
        help="max executions per request before it is shed (default 3)",
    )
    p.add_argument(
        "--backoff-us", type=float, default=200.0, metavar="US",
        help="base of the exponential retry backoff (default 200us)",
    )
    p.add_argument(
        "--shed", action="store_true",
        help="shed requests whose queueing delay already exceeds the SLO",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="fleet-scale serving: N routed devices (load balancing)",
    )
    p.add_argument(
        "models", nargs="*", metavar="MODEL",
        help=f"workload mix, one or more of {model_names()} or 'stem' "
        "(default: MobileNetV2 InceptionV3)",
    )
    p.add_argument(
        "--devices", type=int, default=4, metavar="N",
        help="homogeneous fleet size (default 4)",
    )
    p.add_argument(
        "--machine", default="exynos2100",
        help="machine preset for a homogeneous fleet",
    )
    p.add_argument(
        "--machines", default="", metavar="SPECS",
        help="comma-separated per-device machine specs for a mixed "
        "fleet (overrides --devices/--machine)",
    )
    p.add_argument(
        "--router", default="all",
        choices=["round-robin", "least-loaded", "p2c", "affinity", "all"],
        help="routing policy, or 'all' to compare (default)",
    )
    p.add_argument(
        "--policy", choices=["fifo", "sjf", "dynamic"], default="sjf",
        help="per-device scheduling policy (default sjf)",
    )
    p.add_argument(
        "--mode", choices=["gang", "continuous"], default="continuous",
        help="per-device admission discipline (default continuous)",
    )
    p.add_argument(
        "--arrival", default="poisson",
        choices=["poisson", "diurnal", "bursty", "sessions"],
        help="fleet-wide arrival process (default poisson)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--config", choices=sorted(CONFIGS), default="stratum",
        help="compile configuration for multi-core groups",
    )
    p.add_argument(
        "--rps", type=float, default=3000.0,
        help="fleet-wide offered load, requests per second",
    )
    p.add_argument(
        "--duration", type=float, default=20.0, metavar="MS",
        help="arrival window in simulated milliseconds",
    )
    p.add_argument(
        "--duration-short", action="store_true",
        help="2 ms smoke-test window (overrides --duration)",
    )
    p.add_argument(
        "--requests", type=int, default=0, metavar="N",
        help="additionally cap the workload at N requests",
    )
    p.add_argument(
        "--slo-scale", type=float, default=5.0,
        help="per-request SLO as a multiple of the model's isolated "
        "latency on device 0 (0 disables SLOs)",
    )
    p.add_argument(
        "--kill", action="append", default=[], metavar="DEV@T",
        help="kill device DEV at time T ('1@4000' us or '1@50%%' of "
        "the window); repeatable",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for per-device simulation (default 1; "
        "results are identical at any width)",
    )
    p.add_argument(
        "--trace", action="store_true",
        help="include the per-request router decision trace (with --json)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("table4", help="partitioning-scheme profile")
    common(p, config=False)
    p.set_defaults(func=cmd_table4)

    p = sub.add_parser("table5", help="Halo vs Stratum on the stem")
    p.add_argument("--machine", default="exynos2100")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_table5)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
