"""Grid sweep runner: bundling, caching, dispatch, and speedup summaries."""

import dataclasses

import pytest

from repro.analysis import (
    SweepJob,
    build_grid,
    paper_configurations,
    record_speedups,
    records_by_model,
    resolve_model,
    run_sweep,
    sweep_configurations,
)
from repro.analysis.sweep import _bundles
from repro.compiler import CompileOptions, ProgramCache
from repro.hw import tiny_test_machine


@pytest.fixture(scope="module")
def npu():
    return tiny_test_machine(3)


@pytest.fixture(scope="module")
def records(npu):
    jobs = build_grid(["stem"], seeds=[0, 1])
    return run_sweep(jobs, npu, max_workers=1)


class TestGrid:
    def test_cross_product_order(self):
        jobs = build_grid(["a", "b"], seeds=[0, 1])
        assert len(jobs) == 2 * 4 * 2  # models x paper configs x seeds
        assert jobs[0] == SweepJob("a", paper_configurations()[0], 0)
        assert jobs[1].seed == 1 and jobs[1].model == "a"

    def test_custom_configurations(self):
        jobs = build_grid(["a"], [CompileOptions.base()], seeds=[7])
        assert jobs == [SweepJob("a", CompileOptions.base(), 7)]

    def test_bundles_group_seeds(self):
        jobs = build_grid(["a", "b"], [CompileOptions.base()], seeds=[0, 1, 2])
        bundles = _bundles(jobs)
        assert [(m, s) for m, _, s in bundles] == [
            ("a", [0, 1, 2]),
            ("b", [0, 1, 2]),
        ]

    def test_resolve_model_stem_and_zoo(self):
        assert resolve_model("stem").name == "inception_v3_stem"
        assert resolve_model("MobileNetV2").name == "mobilenet_v2"
        with pytest.raises(KeyError):
            resolve_model("no-such-model")


class TestRunSweep:
    def test_record_per_grid_point(self, records):
        assert len(records) == 4 * 2
        labels = {r.label for r in records}
        assert labels == {"1-core", "Base", "+Halo", "+Stratum"}
        seeds = {r.seed for r in records}
        assert seeds == {0, 1}

    def test_single_core_flag_follows_options(self, records):
        for r in records:
            assert r.single_core == (r.label == "1-core")

    def test_compile_once_per_bundle(self, npu):
        cache = ProgramCache()
        jobs = build_grid(["stem"], [CompileOptions.base()], seeds=[0, 1, 2])
        records = run_sweep(jobs, npu, max_workers=1, cache=cache)
        assert cache.stats() == (0, 1)  # one compile serves three seeds
        assert [r.cache_hit for r in records] == [False, True, True]

    def test_repeat_sweep_hits_cache(self, npu):
        cache = ProgramCache()
        jobs = build_grid(["stem"], [CompileOptions.base()], seeds=[0])
        run_sweep(jobs, npu, max_workers=1, cache=cache)
        records = run_sweep(jobs, npu, max_workers=1, cache=cache)
        assert cache.stats() == (1, 1)
        assert records[0].cache_hit

    def test_matches_sweep_configurations(self, npu, records):
        """The grid runner and the per-model sweep agree latency-for-
        latency (same compiler, same simulator, same seed)."""
        reference = sweep_configurations(resolve_model("stem"), npu, seed=0)
        for r in records:
            if r.seed == 0:
                assert r.latency_us == pytest.approx(
                    reference[r.label].latency_us
                )

    def test_records_serializable(self, records):
        d = records[0].to_dict()
        assert d["model"] == "stem"
        assert isinstance(d["latency_us"], float)

    def test_empty_grid(self, npu):
        assert run_sweep([], npu) == []

    def test_process_pool_path_matches_serial(self, npu):
        """The multiprocess fan-out returns the same records as the
        serial path (workers rebuild graphs from model names)."""
        jobs = build_grid(
            ["stem"], [CompileOptions.single_core(), CompileOptions.base()], seeds=[0]
        )
        serial = run_sweep(jobs, npu, max_workers=1)
        parallel = run_sweep(jobs, npu, max_workers=2)
        assert [dataclasses.replace(r, cache_hit=False) for r in parallel] == [
            dataclasses.replace(r, cache_hit=False) for r in serial
        ]


class TestRecordSpeedups:
    def test_baseline_normalized(self, records):
        s = record_speedups(records)["stem"]
        assert s["1-core"] == pytest.approx(1.0)
        assert s["Base"] > 1.0

    def test_grouping(self, records):
        grouped = records_by_model(records)
        assert set(grouped) == {"stem"}
        assert len(grouped["stem"]) == len(records)

    def test_missing_baseline_raises(self, npu):
        jobs = build_grid(["stem"], [CompileOptions.base()], seeds=[0])
        records = run_sweep(jobs, npu, max_workers=1)
        with pytest.raises(ValueError, match="single-core baseline"):
            record_speedups(records)

    def test_zero_latency_config_is_inf(self, records):
        broken = [
            dataclasses.replace(r, latency_us=0.0) if r.label == "Base" else r
            for r in records
        ]
        s = record_speedups(broken)["stem"]
        assert s["Base"] == float("inf")

    def test_zero_latency_baseline_raises(self, records):
        broken = [
            dataclasses.replace(r, latency_us=0.0) if r.single_core else r
            for r in records
        ]
        with pytest.raises(ValueError, match="non-positive"):
            record_speedups(broken)
