"""Plain-text table rendering used by benchmarks and examples."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kb(num_bytes: float) -> str:
    return f"{num_bytes / 1024:,.0f}KB"


def format_us(us: float) -> str:
    return f"{us:,.1f}us"


def format_speedup(x: float) -> str:
    return f"{x:.2f}x"
