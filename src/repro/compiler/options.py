"""Compilation options -- the paper's cumulative configurations (Table 3).

``Base`` partitions layers adaptively (h1-h5), schedules them with
Algorithm 1 and pipelines tiles within each core.  ``+Halo`` additionally
exchanges borderline data core-to-core (with the halo-first tile policy)
and forwards feature maps in the SPM.  ``+Stratum`` additionally fuses
eligible layer runs into synchronization-free strata (Algorithm 2).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.partition.direction import PartitionDirection, PartitionPolicy
from repro.partition.heuristics import ALL_HEURISTICS

#: Direction-override values a candidate may pin a layer to.
DIRECTION_OVERRIDE_VALUES = ("spatial", "channel", "none")


class ScheduleStrategy(enum.Enum):
    """Layer-ordering strategy (Figure 6).

    ``ALGORITHM1`` is the paper's hybrid: follow the consumer of a
    spatially partitioned layer (data reuse), take a sibling otherwise
    (extend the span between synchronization points).  The pure
    strategies exist for the Figure 8 comparison.
    """

    ALGORITHM1 = "algorithm1"
    DEPTH_FIRST = "depth-first"
    BREADTH_FIRST = "breadth-first"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class CompileOptions:
    """Switches for the optimization pipeline."""

    partition_policy: PartitionPolicy = PartitionPolicy.ADAPTIVE
    enabled_heuristics: FrozenSet[str] = ALL_HEURISTICS
    schedule_strategy: ScheduleStrategy = ScheduleStrategy.ALGORITHM1
    #: Exchange halo data directly between cores for adjacent spatial pairs.
    halo_exchange: bool = False
    #: Schedule halo-producing tiles first within a sub-layer.
    halo_first: bool = False
    #: Keep producer outputs resident in SPM for the immediately following
    #: consumer (feature-map forwarding).
    feature_map_forwarding: bool = False
    #: Build strata (Algorithm 2) and run them sync- and store-free.
    stratum: bool = False
    #: Count the eliminated store/load round trip in h8's gain estimate.
    stratum_roundtrip_gain: bool = True
    #: Run the static program verifier (:mod:`repro.verify`) on the
    #: compiled program and raise ``VerificationError`` on any error.
    verify: bool = False
    #: Per-layer partition-direction pins, ``(layer, direction)`` pairs
    #: with direction one of :data:`DIRECTION_OVERRIDE_VALUES`.  Layers
    #: not listed keep the policy/heuristic choice; an infeasible pin
    #: falls back to it too.  This is the autotuner's first knob axis
    #: (:mod:`repro.compiler.autotune`); the tuples are canonicalized
    #: (sorted, duplicate-free) so equality, hashing and the compile
    #: fingerprint all agree on the same candidate.
    direction_overrides: Tuple[Tuple[str, str], ...] = ()
    #: Per-layer pipeline-depth pins, ``(layer, num_tiles >= 1)`` pairs
    #: replacing the tiler's fixed ``PIPELINE_TILES`` target for that
    #: layer.  SPM feasibility still dominates: the tiler only ever
    #: *raises* the count to fit double buffers (the knob can never
    #: produce an over-capacity plan).  Second autotuner knob axis.
    tile_overrides: Tuple[Tuple[str, int], ...] = ()
    #: Layers barred from joining any stratum: the Algorithm 2
    #: accumulation seals at (and never extends onto) these layers,
    #: giving a per-layer escape hatch from the h6-h8 membership
    #: decision.  Third autotuner knob axis.
    stratum_blocks: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Canonicalize the override tuples so two equal candidates are
        # one dataclass value (equality == hash == fingerprint) and two
        # *distinct* candidates can never collapse to one cache entry.
        object.__setattr__(
            self,
            "direction_overrides",
            _canonical_pairs(self.direction_overrides, "direction_overrides"),
        )
        object.__setattr__(
            self,
            "tile_overrides",
            _canonical_pairs(self.tile_overrides, "tile_overrides"),
        )
        blocks = tuple(sorted(set(self.stratum_blocks)))
        object.__setattr__(self, "stratum_blocks", blocks)
        for layer, direction in self.direction_overrides:
            if direction not in DIRECTION_OVERRIDE_VALUES:
                raise ValueError(
                    f"direction override for {layer!r} must be one of "
                    f"{DIRECTION_OVERRIDE_VALUES}, got {direction!r}"
                )
        for layer, tiles in self.tile_overrides:
            if not isinstance(tiles, int) or tiles < 1:
                raise ValueError(
                    f"tile override for {layer!r} must be a positive "
                    f"integer, got {tiles!r}"
                )

    @classmethod
    def base(cls, policy: PartitionPolicy = PartitionPolicy.ADAPTIVE) -> "CompileOptions":
        """The paper's Base configuration."""
        return cls(partition_policy=policy)

    @classmethod
    def halo(cls, policy: PartitionPolicy = PartitionPolicy.ADAPTIVE) -> "CompileOptions":
        """The paper's +Halo configuration (Table 3): halo-exchange plus
        the halo-first tile policy, cumulative on Base.

        Feature-map forwarding rides along where the SPM allows it, per
        the paper's Table 5 note ("halo exchange can have more chances of
        feature-map forwarding"); disable with ``without_forwarding()``
        for the bare-exchange ablation.
        """
        return cls(
            partition_policy=policy,
            halo_exchange=True,
            halo_first=True,
            feature_map_forwarding=True,
        )

    @classmethod
    def stratum_config(
        cls, policy: PartitionPolicy = PartitionPolicy.ADAPTIVE
    ) -> "CompileOptions":
        """The paper's +Stratum configuration (cumulative on +Halo).

        Strata forward feature maps internally through SPM ring buffers;
        outside strata the +Halo machinery (including forwarding) applies.
        """
        return cls(
            partition_policy=policy,
            halo_exchange=True,
            halo_first=True,
            feature_map_forwarding=True,
            stratum=True,
        )

    @classmethod
    def stratum_only(
        cls, policy: PartitionPolicy = PartitionPolicy.ADAPTIVE
    ) -> "CompileOptions":
        """Strata without halo-exchange (Table 5's '+Stratum only' row)."""
        return cls(
            partition_policy=policy,
            halo_exchange=False,
            halo_first=False,
            feature_map_forwarding=True,
            stratum=True,
        )

    def with_forwarding(self) -> "CompileOptions":
        """Enable SPM feature-map forwarding on top of this configuration."""
        return dataclasses.replace(self, feature_map_forwarding=True)

    def without_forwarding(self) -> "CompileOptions":
        """Disable feature-map forwarding (bare halo-exchange ablation)."""
        return dataclasses.replace(self, feature_map_forwarding=False)

    @classmethod
    def single_core(cls) -> "CompileOptions":
        """The 1-core baseline."""
        return cls(partition_policy=PartitionPolicy.SINGLE_CORE)

    @property
    def is_single_core(self) -> bool:
        """True when this configuration is the paper's 1-core baseline.

        Runners use this predicate -- not the display ``label`` -- to
        decide whether to shrink the machine to one core, so a custom
        configuration that happens to be labelled "1-core" (or a
        relabelled single-core one) is dispatched by what it *is* rather
        than by what it is called.
        """
        return self.partition_policy is PartitionPolicy.SINGLE_CORE

    @property
    def label(self) -> str:
        if self.is_single_core:
            return "1-core"
        if self.stratum and self.halo_exchange:
            return "+Stratum"
        if self.stratum:
            return "+Stratum-only"
        if self.halo_exchange:
            return "+Halo"
        return "Base"

    # ------------------------------------------------------ override access

    @property
    def has_overrides(self) -> bool:
        """True when any per-layer autotune knob deviates from heuristics."""
        return bool(
            self.direction_overrides or self.tile_overrides or self.stratum_blocks
        )

    def direction_override_map(self) -> Dict[str, PartitionDirection]:
        """The direction pins as a layer -> direction mapping."""
        return {
            layer: PartitionDirection(value)
            for layer, value in self.direction_overrides
        }

    def tile_override_map(self) -> Dict[str, int]:
        """The pipeline-depth pins as a layer -> tile-count mapping."""
        return dict(self.tile_overrides)

    def stratum_block_set(self) -> FrozenSet[str]:
        """Layers barred from stratum membership, as a set."""
        return frozenset(self.stratum_blocks)

    def with_overrides(
        self,
        directions: Optional[Mapping[str, str]] = None,
        tiles: Optional[Mapping[str, int]] = None,
        blocks: Optional[Iterable[str]] = None,
    ) -> "CompileOptions":
        """This configuration with the given per-layer knob pins.

        Replaces (not merges) each override axis that is passed; axes
        left ``None`` keep their current pins.
        """
        return dataclasses.replace(
            self,
            direction_overrides=(
                tuple(directions.items())
                if directions is not None
                else self.direction_overrides
            ),
            tile_overrides=(
                tuple(tiles.items()) if tiles is not None else self.tile_overrides
            ),
            stratum_blocks=(
                tuple(blocks) if blocks is not None else self.stratum_blocks
            ),
        )


def _canonical_pairs(
    pairs: Iterable[Tuple[str, object]], field: str
) -> Tuple[Tuple[str, object], ...]:
    """Sorted, duplicate-free ``(layer, value)`` pairs.

    One layer may carry at most one value: conflicting duplicates would
    otherwise make two *different* candidates compare (and hash, and
    fingerprint) unequal while compiling identically -- or worse, leave
    the effective value dependent on iteration order.
    """
    canonical = sorted(set(tuple(pairs)))
    seen: Dict[str, object] = {}
    for layer, value in canonical:
        if layer in seen and seen[layer] != value:
            raise ValueError(
                f"conflicting {field} for layer {layer!r}: "
                f"{seen[layer]!r} vs {value!r}"
            )
        seen[layer] = value
    return tuple(canonical)
